// Deterministic fault plans: what goes wrong, where, and when.
//
// A FaultPlan is a validated schedule of injected failures — crash an NF
// (its in-flight burst dies with the process), stall it (a straggler that
// spins on the CPU without making progress until the manager's watchdog
// kills it), or degrade it (scale its service-time distribution, the
// "suddenly slow" NF). It also covers the storage fault domain: the shared
// block device behind the §3.4 async-I/O path can be slowed (latency
// spike), error out, tear completions (partial writes) or wedge entirely
// (no request completes until the window ends) — see DESIGN.md §12. Plans
// are built programmatically or parsed from a config file (`fault` /
// `device_fault` directives, see src/config/loader.hpp) and armed by a
// FaultInjector, which turns each spec into an ordinary engine event —
// faults therefore replay byte-for-byte with the rest of the simulation.
// Validation happens at add time: bad instants, bad factors and
// overlapping fault windows on the same NF (or on the device) throw
// FaultError immediately, so a malformed plan never reaches the engine.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/time.hpp"
#include "flow/service_chain.hpp"

namespace nfv::fault {

/// Thrown on an invalid fault specification (negative times, zero-or-
/// negative degrade factors, overlapping windows on one NF).
class FaultError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

enum class FaultKind {
  kCrash,    ///< Process dies: in-flight burst dropped, NF marked DEAD.
  kStall,    ///< Straggler: holds the CPU, zero progress, watchdog bait.
  kDegrade,  ///< Service-time distribution scaled by `factor`.
  kDevice,   ///< Storage fault (sub-kind in FaultSpec::device).
};

/// What goes wrong on the shared block device (DESIGN.md §12).
enum class DeviceFaultKind {
  kSlow,   ///< Latency spike: per-request setup latency scaled by `factor`.
  kError,  ///< Transient errors: every request completes with IoStatus::kError.
  kTorn,   ///< Torn completions: only `factor` fraction of the bytes land.
  kWedge,  ///< Full wedge: no request completes until the window ends.
};

const char* to_string(FaultKind kind);
const char* to_string(DeviceFaultKind kind);

/// Sentinel for FaultSpec::restart_after: the manager restarts the NF
/// after its configured default delay (LifecycleConfig::default_restart_delay).
inline constexpr Cycles kDefaultRestart = -1;

struct FaultSpec {
  FaultKind kind = FaultKind::kCrash;
  flow::NfId nf = 0;  ///< Target NF; unused (0) for device faults.
  Cycles at = 0;      ///< Injection instant (engine time).
  /// Crash/stall: delay from death *detection* to the restart attempt;
  /// kDefaultRestart defers to the manager's default.
  Cycles restart_after = kDefaultRestart;
  /// Degrade: service-time scale (> 0). Device slow: latency scale (> 0).
  /// Device torn: fraction of bytes that land, in [0, 1).
  double factor = 1.0;
  Cycles duration = 0;  ///< Degrade/device: window length; 0 = permanent.
  /// Device fault sub-kind; meaningful only when kind == kDevice. Last so
  /// existing aggregate initializers of the NF-fault fields stay valid.
  DeviceFaultKind device = DeviceFaultKind::kSlow;

  /// Nominal window this fault occupies on its NF, for overlap checks.
  /// Watchdog detection latency can extend the actual outage slightly;
  /// validation is on nominal times.
  [[nodiscard]] Cycles window_end() const;
};

class FaultPlan {
 public:
  /// Kill `nf` at `at`; the manager restarts it `restart_after` cycles
  /// after the watchdog detects the death (kDefaultRestart = config default).
  void add_crash(flow::NfId nf, Cycles at,
                 Cycles restart_after = kDefaultRestart);

  /// Turn `nf` into a straggler at `at`: it occupies the CPU but processes
  /// nothing until the watchdog declares it STUCK and force-crashes it;
  /// `restart_after` then applies as for add_crash.
  void add_stall(flow::NfId nf, Cycles at,
                 Cycles restart_after = kDefaultRestart);

  /// Scale `nf`'s service-time distribution by `factor` (> 0) during
  /// [at, at + duration); duration 0 means until the end of the run.
  void add_degrade(flow::NfId nf, Cycles at, double factor,
                   Cycles duration = 0);

  // -- storage fault domain (DESIGN.md §12). Windows are half-open
  //    [at, at + duration); duration 0 means until the end of the run.
  //    One device fault at a time: device windows must not overlap each
  //    other (they may freely overlap NF fault windows).
  /// Latency spike: scale the device's per-request latency by `factor` (> 0).
  void add_device_slow(Cycles at, double factor, Cycles duration = 0);
  /// Transient error window: every request completes with IoStatus::kError.
  void add_device_error(Cycles at, Cycles duration = 0);
  /// Torn completions: requests complete with only `fraction` (in [0, 1))
  /// of their bytes transferred and IoStatus::kTorn.
  void add_device_torn(Cycles at, double fraction, Cycles duration = 0);
  /// Full wedge: the device stops completing requests (in-flight ones
  /// hang too) until the window ends.
  void add_device_wedge(Cycles at, Cycles duration = 0);

  [[nodiscard]] const std::vector<FaultSpec>& specs() const { return specs_; }
  [[nodiscard]] bool empty() const { return specs_.empty(); }
  [[nodiscard]] std::size_t size() const { return specs_.size(); }
  /// True when any spec targets the block device (the platform then wires
  /// the device as a fault sink and registers its metrics).
  [[nodiscard]] bool has_device_faults() const;

 private:
  void add(FaultSpec spec);

  std::vector<FaultSpec> specs_;
};

}  // namespace nfv::fault
