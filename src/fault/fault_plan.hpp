// Deterministic fault plans: what goes wrong, where, and when.
//
// A FaultPlan is a validated schedule of injected failures — crash an NF
// (its in-flight burst dies with the process), stall it (a straggler that
// spins on the CPU without making progress until the manager's watchdog
// kills it), or degrade it (scale its service-time distribution, the
// "suddenly slow" NF). Plans are built programmatically or parsed from a
// config file (`fault` directives, see src/config/loader.hpp) and armed by
// a FaultInjector, which turns each spec into an ordinary engine event —
// faults therefore replay byte-for-byte with the rest of the simulation.
// Validation happens at add time: bad instants, bad factors and
// overlapping fault windows on the same NF throw FaultError immediately,
// so a malformed plan never reaches the engine.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/time.hpp"
#include "flow/service_chain.hpp"

namespace nfv::fault {

/// Thrown on an invalid fault specification (negative times, zero-or-
/// negative degrade factors, overlapping windows on one NF).
class FaultError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

enum class FaultKind {
  kCrash,    ///< Process dies: in-flight burst dropped, NF marked DEAD.
  kStall,    ///< Straggler: holds the CPU, zero progress, watchdog bait.
  kDegrade,  ///< Service-time distribution scaled by `factor`.
};

const char* to_string(FaultKind kind);

/// Sentinel for FaultSpec::restart_after: the manager restarts the NF
/// after its configured default delay (LifecycleConfig::default_restart_delay).
inline constexpr Cycles kDefaultRestart = -1;

struct FaultSpec {
  FaultKind kind = FaultKind::kCrash;
  flow::NfId nf = 0;
  Cycles at = 0;  ///< Injection instant (engine time).
  /// Crash/stall: delay from death *detection* to the restart attempt;
  /// kDefaultRestart defers to the manager's default.
  Cycles restart_after = kDefaultRestart;
  double factor = 1.0;  ///< Degrade: service-time scale (> 0).
  Cycles duration = 0;  ///< Degrade: window length; 0 = permanent.

  /// Nominal window this fault occupies on its NF, for overlap checks.
  /// Watchdog detection latency can extend the actual outage slightly;
  /// validation is on nominal times.
  [[nodiscard]] Cycles window_end() const;
};

class FaultPlan {
 public:
  /// Kill `nf` at `at`; the manager restarts it `restart_after` cycles
  /// after the watchdog detects the death (kDefaultRestart = config default).
  void add_crash(flow::NfId nf, Cycles at,
                 Cycles restart_after = kDefaultRestart);

  /// Turn `nf` into a straggler at `at`: it occupies the CPU but processes
  /// nothing until the watchdog declares it STUCK and force-crashes it;
  /// `restart_after` then applies as for add_crash.
  void add_stall(flow::NfId nf, Cycles at,
                 Cycles restart_after = kDefaultRestart);

  /// Scale `nf`'s service-time distribution by `factor` (> 0) during
  /// [at, at + duration); duration 0 means until the end of the run.
  void add_degrade(flow::NfId nf, Cycles at, double factor,
                   Cycles duration = 0);

  [[nodiscard]] const std::vector<FaultSpec>& specs() const { return specs_; }
  [[nodiscard]] bool empty() const { return specs_.empty(); }
  [[nodiscard]] std::size_t size() const { return specs_.size(); }

 private:
  void add(FaultSpec spec);

  std::vector<FaultSpec> specs_;
};

}  // namespace nfv::fault
