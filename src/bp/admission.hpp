// Utility-aware ingress admission control (DESIGN.md §17).
//
// The Fig. 4 hysteresis backpressure sheds *every* chain through a
// throttled NF the same way. This controller adds a criticality axis on
// top of it, IRON-style: chains opt in with a flow class (priority +
// utility); when the class's first-hop queue crosses the engage watermark
// or the chain's SLO violation clock is running, the gate starts shedding
// the *lowest-utility* classes sharing that queue first, one class per
// hold period, until pressure clears. A shed class is not blackholed — a
// per-class token bucket trickles a bounded packet rate through so the
// class keeps a live cost estimate and recovers instantly on release.
//
// Anti-limit-cycling mirrors the SLO controller's decay streak (§16):
// engage and release watermarks are split, and any engage/release action
// arms a minimum-hold countdown during which the ladder cannot move
// again, so a queue oscillating around the watermark cannot flap classes.
//
// The controller is passive: the Manager calls admit() per ingress packet
// (two branches when the chain has no class) and evaluate() on the
// monitor cadence with the queue occupancies it owns. Chains with no
// registered class never touch the controller — the all-off path is one
// null pointer test in the Manager.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/time.hpp"
#include "flow/service_chain.hpp"
#include "obs/observability.hpp"

namespace nfv::bp {

struct AdmissionConfig {
  /// Engage pressure when the class's first-hop RX occupancy reaches this
  /// fraction of capacity (aligned with the backpressure high watermark).
  double engage_watermark = 0.80;
  /// Pressure is relieved only below this fraction (hysteresis band).
  double release_watermark = 0.50;
  /// Minimum evaluations (monitor cadence) between consecutive ladder
  /// actions in one ingress group — the engage/release hold time.
  std::uint32_t min_hold_evals = 4;
  /// Trickle rate admitted per *shed* class, in packets per second. Keeps
  /// the shed class's downstream cost estimate alive (same rationale as
  /// the min_shares floor) instead of blackholing it.
  double shed_admit_pps = 50'000.0;
  /// Token bucket depth for the trickle, in packets.
  double shed_burst = 32.0;
  /// Converts shed_admit_pps to tokens per cycle.
  double cpu_hz = kDefaultCpuHz;
};

/// A chain's flow class (`class <chain> priority= utility=`). Priority
/// feeds the PAM push-aside neighbor ranking; utility orders the shed
/// ladder (lowest goes first).
struct ClassSpec {
  double priority = 1.0;
  double utility = 1.0;
};

struct AdmissionClassStats {
  std::uint64_t engagements = 0;     ///< Times this class was shed.
  std::uint64_t releases = 0;        ///< Times shedding was lifted.
  std::uint64_t discards = 0;        ///< Ingress packets discarded.
  std::uint64_t trickle_admits = 0;  ///< Packets admitted while shed.
};

/// Per-eval input for one classed chain, built by the Manager. Chains
/// sharing a first hop (`group`) share one shed ladder.
struct AdmissionInput {
  flow::ChainId chain = 0;
  flow::NfId group = 0;         ///< First-hop NF — the contended queue.
  double occupancy = 0.0;       ///< First-hop RX size/capacity in [0,1].
  bool violating = false;       ///< Chain's SLO violation clock running.
};

class AdmissionController {
 public:
  explicit AdmissionController(AdmissionConfig config = {});

  /// Register (or update) a chain's flow class. Must precede traffic.
  void set_class(flow::ChainId chain, ClassSpec spec);

  [[nodiscard]] bool has_class(flow::ChainId chain) const {
    return chain < chains_.size() && chains_[chain].classed;
  }
  [[nodiscard]] const ClassSpec* class_of(flow::ChainId chain) const {
    return has_class(chain) ? &chains_[chain].spec : nullptr;
  }
  [[nodiscard]] std::size_t class_count() const { return class_count_; }

  /// Attach per-class adm.* counters (chain-scoped by `chain_names`) and
  /// lane-905 trace events. Registration touches only classed chains, so
  /// runs without classes keep the legacy metrics layout byte-identical.
  void set_observability(obs::Observability* obs,
                         const std::vector<std::string>& chain_names);

  /// Ingress gate: may `chain` accept a packet at `now`? Unclassed or
  /// un-shed chains always admit; shed chains spend a trickle token or
  /// report a discard (the caller owns the drop accounting).
  [[nodiscard]] bool admit(flow::ChainId chain, Cycles now);

  /// Advance every shed ladder one step against fresh queue/SLO inputs.
  /// Call on the monitor cadence with one entry per locally-headed
  /// classed chain; grouping is by `AdmissionInput::group`.
  void evaluate(Cycles now, const std::vector<AdmissionInput>& inputs);

  /// Is the chain's class currently being shed?
  [[nodiscard]] bool engaged(flow::ChainId chain) const {
    return chain < chains_.size() && chains_[chain].engaged;
  }

  [[nodiscard]] const AdmissionClassStats& stats(flow::ChainId chain) const {
    return chains_[chain].stats;
  }

  /// Total ingress discards across every class — the distinct
  /// conservation sink (separate from entry-throttle and unmatched drops).
  [[nodiscard]] std::uint64_t total_discards() const;

  [[nodiscard]] const AdmissionConfig& config() const { return config_; }

 private:
  struct ChainState {
    bool classed = false;
    bool engaged = false;
    ClassSpec spec;
    /// Trickle bucket; full on engage so release/re-engage cannot starve
    /// a burst that would have passed the instant before.
    double tokens = 0.0;
    Cycles last_refill = 0;
    AdmissionClassStats stats;
    obs::Counter* ctr_engagements = nullptr;
    obs::Counter* ctr_releases = nullptr;
    obs::Counter* ctr_discards = nullptr;
    obs::Counter* ctr_trickle = nullptr;
  };

  /// Shed-ladder cooldown per ingress group (first-hop NF id -> evals
  /// remaining before the next engage/release action may fire).
  struct GroupHold {
    flow::NfId group = 0;
    std::uint32_t hold = 0;
  };

  std::uint32_t& hold_of(flow::NfId group);
  void engage(flow::ChainId chain, double occupancy, Cycles now);
  void release(flow::ChainId chain, double occupancy, Cycles now);

  AdmissionConfig config_;
  double tokens_per_cycle_ = 0.0;
  std::size_t class_count_ = 0;
  std::vector<ChainState> chains_;
  std::vector<GroupHold> holds_;
  obs::Observability* obs_ = nullptr;
  std::vector<std::string> chain_names_;
};

}  // namespace nfv::bp
