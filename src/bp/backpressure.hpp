// Chain-level backpressure (§3.3, Figs. 4 & 5).
//
// Detection happens on the Tx threads' enqueue path (cheap: the ring's
// enqueue return value); control is delegated to the Wakeup thread, which
// runs each NF through the hysteresis state machine of Fig. 4:
//
//   Clear ──(qlen >= HIGH)──────────────────────────▶ Watch
//   Watch ──(qlen >= HIGH && head queued > thresh)──▶ Throttle
//   Watch ──(qlen < LOW)────────────────────────────▶ Clear
//   Throttle ──(qlen < LOW)─────────────────────────▶ Clear
//
// While an NF is in Throttle, every service chain passing through it is
// marked throttled: packets of those chains are dropped at the system entry
// point (selective early discard — chain B in Fig. 5 is untouched), and
// strictly-upstream NFs whose *entire* traffic belongs to throttled chains
// get the relinquish flag so they stop consuming CPU until the bottleneck
// drains (§4.3.2). Restricting the flag to fully-throttled NFs is what
// keeps shared NFs (Fig. 8's NF1/NF4) serving their unthrottled chains —
// avoiding the head-of-line blocking the paper cautions against.
#pragma once

#include <cstdint>
#include <vector>

#include "common/time.hpp"
#include "flow/service_chain.hpp"
#include "pktio/ring.hpp"

namespace nfv::bp {

enum class ThrottleState { kClear, kWatch, kThrottle };

struct BpConfig {
  /// Minimum time the head packet must have been queued before Watch
  /// escalates to Throttle (the "Queuing Time > Threshold" arc in Fig. 4).
  /// Default 100 us at 2.6 GHz.
  Cycles queuing_time_threshold = 260'000;
};

struct BpStats {
  std::uint64_t watch_entries = 0;
  std::uint64_t throttle_entries = 0;
  std::uint64_t throttle_clears = 0;
};

class BackpressureManager {
 public:
  BackpressureManager(const flow::ChainRegistry& chains, std::size_t nf_count,
                      BpConfig config = {});

  /// Tx-thread detection hook: called with the enqueue feedback for `nf`'s
  /// RX ring. Only flips Clear -> Watch (the cheap part on the data path).
  void on_enqueue_feedback(flow::NfId nf, pktio::EnqueueResult result);

  /// Wakeup-thread control hook: advance `nf`'s state machine against its
  /// current RX ring occupancy. Returns the (possibly new) state.
  ThrottleState evaluate(flow::NfId nf, const pktio::Ring& rx_ring, Cycles now);

  [[nodiscard]] ThrottleState state(flow::NfId nf) const {
    return states_[nf].state;
  }

  /// Is this chain currently shed at the entry point?
  [[nodiscard]] bool chain_throttled(flow::ChainId chain) const {
    return chain < chain_throttles_.size() && chain_throttles_[chain] > 0;
  }

  /// Should `nf` be given the relinquish (yield) flag? True iff the NF lies
  /// strictly upstream of a throttling NF in every chain it serves.
  [[nodiscard]] bool should_pause_upstream(flow::NfId nf) const;

  [[nodiscard]] const BpStats& stats() const { return stats_; }

 private:
  struct NfState {
    ThrottleState state = ThrottleState::kClear;
  };

  void enter_throttle(flow::NfId nf);
  void leave_throttle(flow::NfId nf);

  const flow::ChainRegistry& chains_;
  BpConfig config_;
  std::vector<NfState> states_;
  /// Number of throttling NFs each chain currently passes through.
  std::vector<std::uint32_t> chain_throttles_;
  BpStats stats_;
};

}  // namespace nfv::bp
