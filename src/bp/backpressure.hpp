// Chain-level backpressure (§3.3, Figs. 4 & 5).
//
// Detection happens on the Tx threads' enqueue path (cheap: the ring's
// enqueue return value); control is delegated to the Wakeup thread, which
// runs each NF through the hysteresis state machine of Fig. 4:
//
//   Clear ──(qlen >= HIGH)──────────────────────────▶ Watch
//   Watch ──(qlen >= HIGH && head queued > thresh)──▶ Throttle
//   Watch ──(qlen < LOW)────────────────────────────▶ Clear
//   Throttle ──(qlen < LOW)─────────────────────────▶ Clear
//
// While an NF is in Throttle, every service chain passing through it is
// marked throttled: packets of those chains are dropped at the system entry
// point (selective early discard — chain B in Fig. 5 is untouched), and
// strictly-upstream NFs whose *entire* traffic belongs to throttled chains
// get the relinquish flag so they stop consuming CPU until the bottleneck
// drains (§4.3.2). Restricting the flag to fully-throttled NFs is what
// keeps shared NFs (Fig. 8's NF1/NF4) serving their unthrottled chains —
// avoiding the head-of-line blocking the paper cautions against.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/time.hpp"
#include "flow/service_chain.hpp"
#include "obs/observability.hpp"
#include "pktio/ring.hpp"

namespace nfv::bp {

enum class ThrottleState { kClear, kWatch, kThrottle };

const char* to_string(ThrottleState state);

struct BpConfig {
  /// Minimum time the head packet must have been queued before Watch
  /// escalates to Throttle (the "Queuing Time > Threshold" arc in Fig. 4).
  /// Default 100 us at 2.6 GHz.
  Cycles queuing_time_threshold = 260'000;
};

struct BpStats {
  std::uint64_t watch_entries = 0;
  std::uint64_t throttle_entries = 0;
  std::uint64_t throttle_clears = 0;
};

class BackpressureManager {
 public:
  BackpressureManager(const flow::ChainRegistry& chains, std::size_t nf_count,
                      BpConfig config = {});

  /// Attach observability: per-NF transition counters (scoped by the names
  /// in `nf_names`, indexed by NfId) and bp_transition trace events.
  void set_observability(obs::Observability* obs,
                         std::vector<std::string> nf_names);

  /// Sharded-simulation hook: called on every real state transition (all of
  /// them funnel through note_transition). The owning lane's Manager uses
  /// this to broadcast the new state to the other lanes' mirrors.
  using StateListener =
      std::function<void(flow::NfId, ThrottleState to, Cycles now)>;
  void set_state_listener(StateListener listener) {
    state_listener_ = std::move(listener);
  }

  /// Mirror a transition that happened on the NF's owning lane. Updates the
  /// state and the chain_throttles_ refcounts (so chain_throttled() and
  /// should_pause_upstream() see remote bottlenecks) but touches no stats,
  /// counters or trace — those belong to the owning lane — and does not
  /// re-fire the state listener.
  void apply_remote_state(flow::NfId nf, ThrottleState to);

  /// Tx-thread detection hook: called with the enqueue feedback for `nf`'s
  /// RX ring. Only flips Clear -> Watch (the cheap part on the data path).
  /// `now` stamps the transition's trace event when a recorder is attached.
  void on_enqueue_feedback(flow::NfId nf, pktio::EnqueueResult result,
                           Cycles now = 0);

  /// Wakeup-thread control hook: advance `nf`'s state machine against its
  /// current RX ring occupancy. Returns the (possibly new) state.
  ThrottleState evaluate(flow::NfId nf, const pktio::Ring& rx_ring, Cycles now);

  /// Fault-model hook (DESIGN.md §11): the NF's process died. Pin its
  /// state to Throttle — a dead NF is treated exactly like a queue stuck
  /// over the high watermark, shedding its chains at the system entry —
  /// and latch it there so evaluate() cannot clear it while the process is
  /// gone (its queue length is meaningless: nothing dequeues).
  void force_dead(flow::NfId nf, Cycles now);

  /// The NF came back. Drops the latch only: the state *remains* Throttle
  /// until the normal Fig. 4 hysteresis clears it, i.e. entry discard
  /// continues until the revived NF drains its backlog below the low
  /// watermark. Recovery composes with congestion control for free.
  void clear_dead(flow::NfId nf, Cycles now);

  [[nodiscard]] bool forced_dead(flow::NfId nf) const {
    return states_[nf].forced_dead;
  }

  [[nodiscard]] ThrottleState state(flow::NfId nf) const {
    return states_[nf].state;
  }

  /// Is this chain currently shed at the entry point?
  [[nodiscard]] bool chain_throttled(flow::ChainId chain) const {
    return chain < chain_throttles_.size() && chain_throttles_[chain] > 0;
  }

  /// Should `nf` be given the relinquish (yield) flag? True iff the NF lies
  /// strictly upstream of a throttling NF in every chain it serves.
  [[nodiscard]] bool should_pause_upstream(flow::NfId nf) const;

  [[nodiscard]] const BpStats& stats() const { return stats_; }

 private:
  struct NfState {
    ThrottleState state = ThrottleState::kClear;
    /// Dead-NF latch: while set, evaluate() leaves the state at Throttle.
    bool forced_dead = false;
    // Per-NF transition counters (null until observability is attached).
    obs::Counter* watch_entries = nullptr;
    obs::Counter* throttle_entries = nullptr;
    obs::Counter* throttle_clears = nullptr;
  };

  void enter_throttle(flow::NfId nf);
  void leave_throttle(flow::NfId nf);
  void note_transition(flow::NfId nf, ThrottleState from, ThrottleState to,
                       std::size_t queue_len, Cycles now);

  const flow::ChainRegistry& chains_;
  BpConfig config_;
  std::vector<NfState> states_;
  /// Number of throttling NFs each chain currently passes through.
  std::vector<std::uint32_t> chain_throttles_;
  BpStats stats_;
  obs::Observability* obs_ = nullptr;
  std::vector<std::string> nf_names_;
  StateListener state_listener_;
};

}  // namespace nfv::bp
