// ECN marking for cross-host congestion control (§3.3).
//
// "Since ECN works at longer timescales, we monitor queue lengths with an
// exponentially weighted moving average and use that to trigger marking of
// flows following [RFC 3168]" — i.e. the RED-gateway discipline: below
// min_th never mark, above max_th always mark, in between mark with a
// probability ramping to max_prob. Marking happens as the Tx thread
// enqueues a TCP packet to a congested NF's RX ring; responsive senders
// then reduce their rate end-to-end, complementing the purely local
// backpressure used for unresponsive (UDP) traffic.
#pragma once

#include <cstdint>
#include <vector>

#include "common/ewma.hpp"
#include "common/rng.hpp"
#include "flow/service_chain.hpp"
#include "pktio/mbuf.hpp"
#include "pktio/ring.hpp"

namespace nfv::bp {

class EcnMarker {
 public:
  struct Config {
    double ewma_weight = 0.02;  ///< RED queue-averaging weight.
    double min_threshold = 0.20;  ///< Fraction of ring capacity.
    double max_threshold = 0.60;
    double max_mark_prob = 0.10;
  };

  explicit EcnMarker(std::size_t nf_count) : EcnMarker(nf_count, Config{}) {}
  EcnMarker(std::size_t nf_count, Config config,
            std::uint64_t seed = 0xecf1ceULL);

  /// Update the EWMA for `nf`'s RX ring and decide whether to mark `mbuf`.
  /// Only ECN-capable TCP packets are ever marked; the EWMA is updated for
  /// every observed enqueue regardless.
  bool on_enqueue(flow::NfId nf, const pktio::Ring& rx_ring, pktio::Mbuf& mbuf);

  [[nodiscard]] double average_queue(flow::NfId nf) const {
    return averages_[nf].value();
  }
  [[nodiscard]] std::uint64_t marks() const { return marks_; }

 private:
  Config config_;
  std::vector<Ewma> averages_;
  Rng rng_;
  std::uint64_t marks_ = 0;
};

}  // namespace nfv::bp
