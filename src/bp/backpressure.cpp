#include "bp/backpressure.hpp"

namespace nfv::bp {

const char* to_string(ThrottleState state) {
  switch (state) {
    case ThrottleState::kClear:
      return "CLEAR";
    case ThrottleState::kWatch:
      return "WATCH";
    case ThrottleState::kThrottle:
      return "THROTTLE";
  }
  return "?";
}

BackpressureManager::BackpressureManager(const flow::ChainRegistry& chains,
                                         std::size_t nf_count, BpConfig config)
    : chains_(chains), config_(config), states_(nf_count) {
  chain_throttles_.assign(chains.size(), 0);
}

void BackpressureManager::set_observability(obs::Observability* obs,
                                            std::vector<std::string> nf_names) {
  obs_ = obs;
  nf_names_ = std::move(nf_names);
  if (obs == nullptr) return;
  for (flow::NfId nf = 0; nf < states_.size(); ++nf) {
    const std::string& name =
        nf < nf_names_.size() ? nf_names_[nf] : std::to_string(nf);
    obs::Scope scope = obs->nf_scope(name);
    states_[nf].watch_entries = scope.counter("bp.watch_entries");
    states_[nf].throttle_entries = scope.counter("bp.throttle_entries");
    states_[nf].throttle_clears = scope.counter("bp.throttle_clears");
  }
}

void BackpressureManager::note_transition(flow::NfId nf, ThrottleState from,
                                          ThrottleState to,
                                          std::size_t queue_len, Cycles now) {
  NfState& st = states_[nf];
  if (to == ThrottleState::kWatch) obs::inc(st.watch_entries);
  if (to == ThrottleState::kThrottle) obs::inc(st.throttle_entries);
  if (from == ThrottleState::kThrottle && to == ThrottleState::kClear) {
    obs::inc(st.throttle_clears);
  }
  if (auto* trace = obs::trace_of(obs_)) {
    trace->instant(now, obs::kBackpressureLane, "bp", "bp_transition",
                   {{"nf", nf < nf_names_.size() ? nf_names_[nf]
                                                 : std::to_string(nf)},
                    {"from", to_string(from)},
                    {"to", to_string(to)}},
                   {{"qlen", static_cast<std::int64_t>(queue_len)}});
  }
  if (state_listener_) state_listener_(nf, to, now);
}

void BackpressureManager::apply_remote_state(flow::NfId nf, ThrottleState to) {
  if (nf >= states_.size()) return;
  NfState& st = states_[nf];
  const ThrottleState from = st.state;
  if (from == to) return;
  st.state = to;
  if (to == ThrottleState::kThrottle) {
    enter_throttle(nf);
  } else if (from == ThrottleState::kThrottle) {
    leave_throttle(nf);
  }
}

void BackpressureManager::on_enqueue_feedback(flow::NfId nf,
                                              pktio::EnqueueResult result,
                                              Cycles now) {
  if (nf >= states_.size()) return;
  if (result != pktio::EnqueueResult::kOk &&
      states_[nf].state == ThrottleState::kClear) {
    states_[nf].state = ThrottleState::kWatch;
    ++stats_.watch_entries;
    note_transition(nf, ThrottleState::kClear, ThrottleState::kWatch,
                    /*queue_len=*/0, now);
  }
}

ThrottleState BackpressureManager::evaluate(flow::NfId nf,
                                            const pktio::Ring& rx_ring,
                                            Cycles now) {
  NfState& st = states_[nf];
  switch (st.state) {
    case ThrottleState::kClear:
      if (rx_ring.above_high_watermark()) {
        st.state = ThrottleState::kWatch;
        ++stats_.watch_entries;
        note_transition(nf, ThrottleState::kClear, ThrottleState::kWatch,
                        rx_ring.size(), now);
      }
      break;
    case ThrottleState::kWatch:
      if (rx_ring.below_low_watermark()) {
        st.state = ThrottleState::kClear;
        note_transition(nf, ThrottleState::kWatch, ThrottleState::kClear,
                        rx_ring.size(), now);
      } else if (rx_ring.above_high_watermark() &&
                 now - rx_ring.head_enqueue_time() >
                     config_.queuing_time_threshold) {
        st.state = ThrottleState::kThrottle;
        ++stats_.throttle_entries;
        enter_throttle(nf);
        note_transition(nf, ThrottleState::kWatch, ThrottleState::kThrottle,
                        rx_ring.size(), now);
      }
      break;
    case ThrottleState::kThrottle:
      if (st.forced_dead) break;  // dead NF: pinned until clear_dead()
      if (rx_ring.below_low_watermark()) {
        st.state = ThrottleState::kClear;
        ++stats_.throttle_clears;
        leave_throttle(nf);
        note_transition(nf, ThrottleState::kThrottle, ThrottleState::kClear,
                        rx_ring.size(), now);
      }
      break;
  }
  return st.state;
}

void BackpressureManager::force_dead(flow::NfId nf, Cycles now) {
  if (nf >= states_.size()) return;
  NfState& st = states_[nf];
  if (st.forced_dead) return;
  st.forced_dead = true;
  if (st.state != ThrottleState::kThrottle) {
    const ThrottleState from = st.state;
    st.state = ThrottleState::kThrottle;
    ++stats_.throttle_entries;
    enter_throttle(nf);
    note_transition(nf, from, ThrottleState::kThrottle, /*queue_len=*/0, now);
  }
}

void BackpressureManager::clear_dead(flow::NfId nf, Cycles now) {
  (void)now;
  if (nf >= states_.size()) return;
  states_[nf].forced_dead = false;
  // No transition here: the state stays Throttle and the next evaluate()
  // pass applies the ordinary hysteresis (clear below the low watermark).
}

void BackpressureManager::enter_throttle(flow::NfId nf) {
  for (flow::ChainId chain : chains_.chains_through(nf)) {
    if (chain >= chain_throttles_.size()) chain_throttles_.resize(chain + 1, 0);
    ++chain_throttles_[chain];
  }
}

void BackpressureManager::leave_throttle(flow::NfId nf) {
  for (flow::ChainId chain : chains_.chains_through(nf)) {
    if (chain < chain_throttles_.size() && chain_throttles_[chain] > 0) {
      --chain_throttles_[chain];
    }
  }
}

bool BackpressureManager::should_pause_upstream(flow::NfId nf) const {
  const auto& through = chains_.chains_through(nf);
  if (through.empty()) return false;
  for (flow::ChainId chain : through) {
    const int my_pos = chains_.position_of(chain, nf);
    bool throttled_downstream = false;
    const auto& hops = chains_.get(chain).hops;
    for (std::size_t pos = static_cast<std::size_t>(my_pos) + 1;
         pos < hops.size(); ++pos) {
      if (states_[hops[pos]].state == ThrottleState::kThrottle) {
        throttled_downstream = true;
        break;
      }
    }
    if (!throttled_downstream) return false;  // this chain still needs us
  }
  return true;
}

}  // namespace nfv::bp
