#include "bp/backpressure.hpp"

namespace nfv::bp {

BackpressureManager::BackpressureManager(const flow::ChainRegistry& chains,
                                         std::size_t nf_count, BpConfig config)
    : chains_(chains), config_(config), states_(nf_count) {
  chain_throttles_.assign(chains.size(), 0);
}

void BackpressureManager::on_enqueue_feedback(flow::NfId nf,
                                              pktio::EnqueueResult result) {
  if (nf >= states_.size()) return;
  if (result != pktio::EnqueueResult::kOk &&
      states_[nf].state == ThrottleState::kClear) {
    states_[nf].state = ThrottleState::kWatch;
    ++stats_.watch_entries;
  }
}

ThrottleState BackpressureManager::evaluate(flow::NfId nf,
                                            const pktio::Ring& rx_ring,
                                            Cycles now) {
  NfState& st = states_[nf];
  switch (st.state) {
    case ThrottleState::kClear:
      if (rx_ring.above_high_watermark()) {
        st.state = ThrottleState::kWatch;
        ++stats_.watch_entries;
      }
      break;
    case ThrottleState::kWatch:
      if (rx_ring.below_low_watermark()) {
        st.state = ThrottleState::kClear;
      } else if (rx_ring.above_high_watermark() &&
                 now - rx_ring.head_enqueue_time() >
                     config_.queuing_time_threshold) {
        st.state = ThrottleState::kThrottle;
        ++stats_.throttle_entries;
        enter_throttle(nf);
      }
      break;
    case ThrottleState::kThrottle:
      if (rx_ring.below_low_watermark()) {
        st.state = ThrottleState::kClear;
        ++stats_.throttle_clears;
        leave_throttle(nf);
      }
      break;
  }
  return st.state;
}

void BackpressureManager::enter_throttle(flow::NfId nf) {
  for (flow::ChainId chain : chains_.chains_through(nf)) {
    if (chain >= chain_throttles_.size()) chain_throttles_.resize(chain + 1, 0);
    ++chain_throttles_[chain];
  }
}

void BackpressureManager::leave_throttle(flow::NfId nf) {
  for (flow::ChainId chain : chains_.chains_through(nf)) {
    if (chain < chain_throttles_.size() && chain_throttles_[chain] > 0) {
      --chain_throttles_[chain];
    }
  }
}

bool BackpressureManager::should_pause_upstream(flow::NfId nf) const {
  const auto& through = chains_.chains_through(nf);
  if (through.empty()) return false;
  for (flow::ChainId chain : through) {
    const int my_pos = chains_.position_of(chain, nf);
    bool throttled_downstream = false;
    const auto& hops = chains_.get(chain).hops;
    for (std::size_t pos = static_cast<std::size_t>(my_pos) + 1;
         pos < hops.size(); ++pos) {
      if (states_[hops[pos]].state == ThrottleState::kThrottle) {
        throttled_downstream = true;
        break;
      }
    }
    if (!throttled_downstream) return false;  // this chain still needs us
  }
  return true;
}

}  // namespace nfv::bp
