#include "bp/ecn.hpp"

namespace nfv::bp {

EcnMarker::EcnMarker(std::size_t nf_count, Config config, std::uint64_t seed)
    : config_(config), rng_(seed) {
  averages_.assign(nf_count, Ewma(config_.ewma_weight));
}

bool EcnMarker::on_enqueue(flow::NfId nf, const pktio::Ring& rx_ring,
                           pktio::Mbuf& mbuf) {
  Ewma& avg = averages_[nf];
  avg.observe(static_cast<double>(rx_ring.size()));

  if (!mbuf.is_tcp || !mbuf.ecn_capable || mbuf.ecn_marked) return false;

  const double capacity = static_cast<double>(rx_ring.capacity());
  const double occupancy = avg.value() / capacity;
  if (occupancy < config_.min_threshold) return false;

  double prob = 1.0;
  if (occupancy < config_.max_threshold) {
    prob = config_.max_mark_prob * (occupancy - config_.min_threshold) /
           (config_.max_threshold - config_.min_threshold);
  }
  if (rng_.next_double() < prob) {
    mbuf.ecn_marked = true;
    ++marks_;
    return true;
  }
  return false;
}

}  // namespace nfv::bp
