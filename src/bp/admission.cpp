#include "bp/admission.hpp"

#include <algorithm>
#include <cmath>

namespace nfv::bp {

AdmissionController::AdmissionController(AdmissionConfig config)
    : config_(config),
      tokens_per_cycle_(config.cpu_hz > 0.0 ? config.shed_admit_pps / config.cpu_hz
                                            : 0.0) {}

void AdmissionController::set_class(flow::ChainId chain, ClassSpec spec) {
  if (chain >= chains_.size()) chains_.resize(chain + 1);
  ChainState& st = chains_[chain];
  if (!st.classed) ++class_count_;
  st.classed = true;
  st.spec = spec;
}

void AdmissionController::set_observability(
    obs::Observability* obs, const std::vector<std::string>& chain_names) {
  obs_ = obs;
  chain_names_ = chain_names;
  if (obs_ == nullptr) return;
  for (flow::ChainId c = 0; c < chains_.size(); ++c) {
    if (!chains_[c].classed) continue;
    // Scope label matches the Manager's chain.* probes (the id string);
    // chain_names_ feeds the human-readable trace args only.
    auto scope = obs_->chain_scope(std::to_string(c));
    chains_[c].ctr_engagements = scope.counter("adm.engagements");
    chains_[c].ctr_releases = scope.counter("adm.releases");
    chains_[c].ctr_discards = scope.counter("adm.discards");
    chains_[c].ctr_trickle = scope.counter("adm.trickle_admits");
  }
}

bool AdmissionController::admit(flow::ChainId chain, Cycles now) {
  if (chain >= chains_.size()) return true;
  ChainState& st = chains_[chain];
  if (!st.engaged) return true;
  // Shed: spend a trickle token or discard. The bucket refills lazily on
  // the packet path so there is no per-tick work for idle classes.
  if (now > st.last_refill) {
    st.tokens = std::min(
        config_.shed_burst,
        st.tokens + static_cast<double>(now - st.last_refill) * tokens_per_cycle_);
    st.last_refill = now;
  }
  if (st.tokens >= 1.0) {
    st.tokens -= 1.0;
    ++st.stats.trickle_admits;
    if (st.ctr_trickle != nullptr) st.ctr_trickle->inc();
    return true;
  }
  ++st.stats.discards;
  if (st.ctr_discards != nullptr) st.ctr_discards->inc();
  return false;
}

std::uint32_t& AdmissionController::hold_of(flow::NfId group) {
  for (GroupHold& h : holds_) {
    if (h.group == group) return h.hold;
  }
  holds_.push_back({group, 0});
  return holds_.back().hold;
}

void AdmissionController::engage(flow::ChainId chain, double occupancy,
                                 Cycles now) {
  ChainState& st = chains_[chain];
  st.engaged = true;
  st.tokens = config_.shed_burst;
  st.last_refill = now;
  ++st.stats.engagements;
  if (st.ctr_engagements != nullptr) st.ctr_engagements->inc();
  if (auto* tr = obs::trace_of(obs_)) {
    const std::string name =
        chain < chain_names_.size() ? chain_names_[chain] : std::to_string(chain);
    tr->instant(now, obs::kAdmissionLane, "adm", "engage", {{"chain", name}},
                {{"occupancy_pct",
                  static_cast<std::int64_t>(std::lround(occupancy * 100.0))}});
  }
}

void AdmissionController::release(flow::ChainId chain, double occupancy,
                                  Cycles now) {
  ChainState& st = chains_[chain];
  st.engaged = false;
  ++st.stats.releases;
  if (st.ctr_releases != nullptr) st.ctr_releases->inc();
  if (auto* tr = obs::trace_of(obs_)) {
    const std::string name =
        chain < chain_names_.size() ? chain_names_[chain] : std::to_string(chain);
    tr->instant(now, obs::kAdmissionLane, "adm", "release", {{"chain", name}},
                {{"occupancy_pct",
                  static_cast<std::int64_t>(std::lround(occupancy * 100.0))}});
  }
}

void AdmissionController::evaluate(Cycles now,
                                   const std::vector<AdmissionInput>& inputs) {
  // Distinct groups in order of first appearance; the Manager builds the
  // inputs in chain-id order, so the walk is deterministic.
  std::vector<flow::NfId> groups;
  for (const AdmissionInput& in : inputs) {
    if (std::find(groups.begin(), groups.end(), in.group) == groups.end()) {
      groups.push_back(in.group);
    }
  }
  for (const flow::NfId group : groups) {
    double occupancy = 0.0;
    bool violating = false;
    for (const AdmissionInput& in : inputs) {
      if (in.group != group) continue;
      occupancy = std::max(occupancy, in.occupancy);
      violating = violating || in.violating;
    }
    const bool queue_pressured = occupancy >= config_.engage_watermark;
    const bool pressured = queue_pressured || violating;
    const bool relieved = occupancy < config_.release_watermark && !violating;

    std::uint32_t& hold = hold_of(group);
    if (hold > 0) {
      --hold;
      continue;
    }
    if (pressured) {
      // Escalate: shed the lowest-utility class not yet engaged. One rung
      // per hold period, so an earlier shed gets time to bite first. When
      // the pressure is SLO-only (the queue itself is fine), a violating
      // chain's own class is exempt — shedding the chain we are trying to
      // rescue cannot shorten its tail, it just burns its goodput.
      flow::ChainId pick = flow::kInvalidChain;
      for (const AdmissionInput& in : inputs) {
        if (in.group != group || chains_[in.chain].engaged) continue;
        if (!queue_pressured && in.violating) continue;
        if (pick == flow::kInvalidChain ||
            chains_[in.chain].spec.utility < chains_[pick].spec.utility ||
            (chains_[in.chain].spec.utility == chains_[pick].spec.utility &&
             in.chain < pick)) {
          pick = in.chain;
        }
      }
      if (pick != flow::kInvalidChain) {
        engage(pick, occupancy, now);
        hold = config_.min_hold_evals;
      }
    } else if (relieved) {
      // De-escalate in reverse: the highest-utility engaged class was shed
      // last and is restored first.
      flow::ChainId pick = flow::kInvalidChain;
      for (const AdmissionInput& in : inputs) {
        if (in.group != group || !chains_[in.chain].engaged) continue;
        if (pick == flow::kInvalidChain ||
            chains_[in.chain].spec.utility > chains_[pick].spec.utility ||
            (chains_[in.chain].spec.utility == chains_[pick].spec.utility &&
             in.chain < pick)) {
          pick = in.chain;
        }
      }
      if (pick != flow::kInvalidChain) {
        release(pick, occupancy, now);
        hold = config_.min_hold_evals;
      }
    }
  }
}

std::uint64_t AdmissionController::total_discards() const {
  std::uint64_t total = 0;
  for (const ChainState& st : chains_) total += st.stats.discards;
  return total;
}

}  // namespace nfv::bp
