// Log-bucketed latency/cost histogram with percentile estimation.
//
// NFVnice stores sampled per-packet processing times in a histogram shared
// between libnf and the NF Manager so that service time can be estimated at
// arbitrary percentiles without keeping every sample (§3.2, §3.5). This is
// that histogram: power-of-two-ish buckets over a cycle range, O(1) insert,
// O(buckets) percentile queries.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/time.hpp"

namespace nfv {

class Histogram {
 public:
  /// Buckets span [1, max_value]; values are clamped into range.
  /// `buckets_per_octave` controls resolution (4 => ~19% relative error).
  explicit Histogram(std::uint64_t max_value = (1ULL << 30),
                     unsigned buckets_per_octave = 4);

  void record(std::uint64_t value);
  void clear();

  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] std::uint64_t sum() const { return sum_; }
  [[nodiscard]] double mean() const {
    return count_ == 0 ? 0.0 : static_cast<double>(sum_) / static_cast<double>(count_);
  }
  [[nodiscard]] std::uint64_t min() const { return count_ == 0 ? 0 : min_; }
  [[nodiscard]] std::uint64_t max() const { return count_ == 0 ? 0 : max_; }

  /// Value at quantile q in [0,1] (q=0.5 is the median the Monitor uses).
  /// Returns the representative (geometric midpoint) of the target bucket.
  [[nodiscard]] std::uint64_t value_at_quantile(double q) const;
  [[nodiscard]] std::uint64_t median() const { return value_at_quantile(0.5); }

  /// Merge another histogram with identical bucketing into this one.
  void merge(const Histogram& other);

  [[nodiscard]] std::size_t bucket_count() const { return counts_.size(); }

 private:
  [[nodiscard]] std::size_t bucket_index(std::uint64_t value) const;
  [[nodiscard]] std::uint64_t bucket_representative(std::size_t index) const;

  std::uint64_t max_value_;
  unsigned buckets_per_octave_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t min_ = 0;
  std::uint64_t max_ = 0;
};

}  // namespace nfv
