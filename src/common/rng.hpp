// Deterministic pseudo-random number generation for workload models.
//
// xoshiro256** seeded via SplitMix64: fast, high quality, and — unlike
// std::mt19937 across standard libraries — bit-for-bit reproducible, which
// the experiment harness relies on to regenerate the paper's tables.
#pragma once

#include <cstdint>

namespace nfv {

/// SplitMix64 step; used to expand a single seed into xoshiro state.
inline std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256** 1.0 (Blackman & Vigna). Period 2^256-1.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x5eedULL) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    std::uint64_t sm = seed;
    for (auto& word : s_) word = splitmix64(sm);
  }

  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform integer in [0, bound) using Lemire's multiply-shift reduction.
  std::uint64_t next_below(std::uint64_t bound) {
    if (bound == 0) return 0;
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(next_u64()) * bound) >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t next_in(std::int64_t lo, std::int64_t hi) {
    return lo + static_cast<std::int64_t>(
                    next_below(static_cast<std::uint64_t>(hi - lo + 1)));
  }

  /// Exponentially distributed value with the given mean (>0).
  double next_exponential(double mean);

  /// Pick an index in [0, n) weighted by `weights` (values need not sum
  /// to 1). Returns n-1 if weights are degenerate.
  std::size_t next_weighted(const double* weights, std::size_t n);

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t s_[4]{};
};

}  // namespace nfv
