#include "common/logging.hpp"

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <iostream>

namespace nfv {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarn};

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) { g_level.store(level); }
LogLevel log_level() { return g_level.load(); }

void init_logging_from_env() {
  const char* env = std::getenv("NFV_LOG");
  if (env == nullptr) return;
  if (std::strcmp(env, "debug") == 0) set_log_level(LogLevel::kDebug);
  else if (std::strcmp(env, "info") == 0) set_log_level(LogLevel::kInfo);
  else if (std::strcmp(env, "warn") == 0) set_log_level(LogLevel::kWarn);
  else if (std::strcmp(env, "error") == 0) set_log_level(LogLevel::kError);
  else if (std::strcmp(env, "off") == 0) set_log_level(LogLevel::kOff);
}

namespace detail {
void log_line(LogLevel level, const std::string& message) {
  std::ostream& out = level >= LogLevel::kWarn ? std::cerr : std::clog;
  out << "[nfv " << level_name(level) << "] " << message << '\n';
}
}  // namespace detail

}  // namespace nfv
