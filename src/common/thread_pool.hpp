// Fixed-size worker pool for running independent jobs concurrently.
//
// Built for the bench suite's experiment runner: each job is one complete
// seed-deterministic Simulation run, so jobs never touch shared state and
// the pool needs no more than FIFO dispatch plus an idle barrier. Jobs must
// not throw — an escaping exception terminates the process.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace nfv::common {

class ThreadPool {
 public:
  /// Spawns `workers` threads (clamped to at least one).
  explicit ThreadPool(std::size_t workers);

  /// Drains outstanding jobs, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Queue a job for execution. Jobs start in submission order (completion
  /// order depends on their runtimes).
  void submit(std::function<void()> job);

  /// Block until every submitted job has finished.
  void wait_idle();

  [[nodiscard]] std::size_t worker_count() const { return workers_.size(); }

 private:
  void worker_loop();

  std::mutex mu_;
  std::condition_variable work_cv_;  ///< job queued or shutdown requested
  std::condition_variable idle_cv_;  ///< a job finished
  std::deque<std::function<void()>> queue_;
  std::size_t active_ = 0;  ///< jobs currently executing
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace nfv::common
