// Time base for the NFVnice simulation substrate.
//
// All simulated time is expressed in CPU cycles of the modelled machine
// (Intel Xeon E5-2697 v3 @ 2.60 GHz in the paper's testbed). Using an
// integral cycle count as the global clock keeps the event engine exact and
// deterministic; helpers below convert to and from wall-clock units.
#pragma once

#include <cstdint>

namespace nfv {

/// Simulated time in CPU cycles. Signed 64-bit so durations can be
/// subtracted freely; 2^63 cycles at 2.6 GHz is ~112 years of simulation.
using Cycles = std::int64_t;

/// Frequency of the modelled CPU. The paper's testbed runs at 2.60 GHz and
/// all NF costs in the paper are quoted in cycles at that frequency.
inline constexpr double kDefaultCpuHz = 2.6e9;

/// Conversions between cycles and wall-clock units at a given frequency.
/// Kept as a value type so experiments can model different clock speeds.
class CpuClock {
 public:
  constexpr explicit CpuClock(double hz = kDefaultCpuHz) : hz_(hz) {}

  [[nodiscard]] constexpr double hz() const { return hz_; }

  [[nodiscard]] constexpr Cycles from_seconds(double s) const {
    return static_cast<Cycles>(s * hz_);
  }
  [[nodiscard]] constexpr Cycles from_millis(double ms) const {
    return from_seconds(ms * 1e-3);
  }
  [[nodiscard]] constexpr Cycles from_micros(double us) const {
    return from_seconds(us * 1e-6);
  }
  [[nodiscard]] constexpr Cycles from_nanos(double ns) const {
    return from_seconds(ns * 1e-9);
  }

  [[nodiscard]] constexpr double to_seconds(Cycles c) const {
    return static_cast<double>(c) / hz_;
  }
  [[nodiscard]] constexpr double to_millis(Cycles c) const {
    return to_seconds(c) * 1e3;
  }
  [[nodiscard]] constexpr double to_micros(Cycles c) const {
    return to_seconds(c) * 1e6;
  }
  [[nodiscard]] constexpr double to_nanos(Cycles c) const {
    return to_seconds(c) * 1e9;
  }

 private:
  double hz_;
};

}  // namespace nfv
