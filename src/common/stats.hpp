// Small statistics helpers shared across the framework and the benches.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

namespace nfv {

/// Jain's fairness index over a set of allocations x_i:
///   J = (Σ x_i)^2 / (n · Σ x_i^2),   J ∈ (0, 1], 1 = perfectly fair.
/// Used to reproduce Fig. 15b.
double jain_fairness_index(const std::vector<double>& values);

/// Streaming min/mean/max accumulator; the paper's bar plots report the
/// average plus the min and max observed across per-second samples.
class MinMeanMax {
 public:
  void add(double v) {
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
    sum_ += v;
    ++n_;
  }
  [[nodiscard]] bool empty() const { return n_ == 0; }
  [[nodiscard]] double min() const { return n_ ? min_ : 0.0; }
  [[nodiscard]] double max() const { return n_ ? max_ : 0.0; }
  [[nodiscard]] double mean() const {
    return n_ ? sum_ / static_cast<double>(n_) : 0.0;
  }
  [[nodiscard]] std::uint64_t count() const { return n_; }
  void reset() { *this = MinMeanMax{}; }

 private:
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
  double sum_ = 0.0;
  std::uint64_t n_ = 0;
};

}  // namespace nfv
