#include "common/thread_pool.hpp"

#include <utility>

namespace nfv::common {

ThreadPool::ThreadPool(std::size_t workers) {
  if (workers == 0) workers = 1;
  workers_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::submit(std::function<void()> job) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(job));
  }
  work_cv_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

void ThreadPool::worker_loop() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    work_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
    if (queue_.empty()) return;  // stop_ set and nothing left to run
    std::function<void()> job = std::move(queue_.front());
    queue_.pop_front();
    ++active_;
    lock.unlock();
    job();
    lock.lock();
    --active_;
    if (queue_.empty() && active_ == 0) idle_cv_.notify_all();
  }
}

}  // namespace nfv::common
