// Time-windowed sample store with median/quantile queries.
//
// The NF Manager estimates an NF's per-packet processing time as the median
// over a 100 ms moving window of sampled timings (§3.5). Samples are stored
// with their timestamp; expired samples are evicted lazily on query/insert.
#pragma once

#include <algorithm>
#include <cstdint>
#include <deque>
#include <vector>

#include "common/time.hpp"

namespace nfv {

class MovingWindow {
 public:
  explicit MovingWindow(Cycles window) : window_(window) {}

  void record(Cycles now, std::uint64_t value) {
    evict(now);
    samples_.push_back({now, value});
  }

  /// Number of live samples at time `now`.
  [[nodiscard]] std::size_t size(Cycles now) {
    evict(now);
    return samples_.size();
  }

  /// Median of live samples; 0 if empty. O(n) selection on each call — the
  /// Monitor calls this at 1 kHz over ~100 samples, which is negligible.
  [[nodiscard]] std::uint64_t median(Cycles now) {
    return quantile(now, 0.5);
  }

  [[nodiscard]] std::uint64_t quantile(Cycles now, double q) {
    evict(now);
    if (samples_.empty()) return 0;
    scratch_.clear();
    scratch_.reserve(samples_.size());
    for (const auto& s : samples_) scratch_.push_back(s.value);
    q = std::clamp(q, 0.0, 1.0);
    const std::size_t k =
        std::min(scratch_.size() - 1,
                 static_cast<std::size_t>(q * static_cast<double>(scratch_.size())));
    std::nth_element(scratch_.begin(), scratch_.begin() + static_cast<std::ptrdiff_t>(k),
                     scratch_.end());
    return scratch_[k];
  }

  [[nodiscard]] double mean(Cycles now) {
    evict(now);
    if (samples_.empty()) return 0.0;
    std::uint64_t sum = 0;
    for (const auto& s : samples_) sum += s.value;
    return static_cast<double>(sum) / static_cast<double>(samples_.size());
  }

  void clear() { samples_.clear(); }

  [[nodiscard]] Cycles window() const { return window_; }

 private:
  struct Sample {
    Cycles when;
    std::uint64_t value;
  };

  void evict(Cycles now) {
    while (!samples_.empty() && samples_.front().when < now - window_) {
      samples_.pop_front();
    }
  }

  Cycles window_;
  std::deque<Sample> samples_;
  std::vector<std::uint64_t> scratch_;
};

}  // namespace nfv
