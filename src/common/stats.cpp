#include "common/stats.hpp"

namespace nfv {

double jain_fairness_index(const std::vector<double>& values) {
  if (values.empty()) return 1.0;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (double v : values) {
    sum += v;
    sum_sq += v * v;
  }
  if (sum_sq == 0.0) return 1.0;  // all-zero allocation is (vacuously) fair
  return (sum * sum) / (static_cast<double>(values.size()) * sum_sq);
}

}  // namespace nfv
