// Minimal leveled logger for the framework.
//
// Experiments run millions of simulated events; logging defaults to WARN so
// benches stay quiet. Set NFV_LOG=debug|info|warn|error in the environment
// or call set_log_level() to change verbosity.
#pragma once

#include <sstream>
#include <string>

namespace nfv {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

void set_log_level(LogLevel level);
LogLevel log_level();

/// Reads NFV_LOG from the environment once and applies it.
void init_logging_from_env();

namespace detail {
void log_line(LogLevel level, const std::string& message);
}

#define NFV_LOG_AT(level, expr)                              \
  do {                                                       \
    if (static_cast<int>(level) >=                           \
        static_cast<int>(::nfv::log_level())) {              \
      std::ostringstream nfv_log_oss_;                       \
      nfv_log_oss_ << expr;                                  \
      ::nfv::detail::log_line(level, nfv_log_oss_.str());    \
    }                                                        \
  } while (0)

#define NFV_DEBUG(expr) NFV_LOG_AT(::nfv::LogLevel::kDebug, expr)
#define NFV_INFO(expr) NFV_LOG_AT(::nfv::LogLevel::kInfo, expr)
#define NFV_WARN(expr) NFV_LOG_AT(::nfv::LogLevel::kWarn, expr)
#define NFV_ERROR(expr) NFV_LOG_AT(::nfv::LogLevel::kError, expr)

}  // namespace nfv
