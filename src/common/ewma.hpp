// Exponentially weighted moving average.
//
// NFVnice monitors queue lengths with an EWMA to decide when to mark ECN on
// TCP flows (§3.3), following the RED/ECN gateway practice of RFC 3168.
#pragma once

namespace nfv {

class Ewma {
 public:
  /// `alpha` is the weight of each new observation, in (0, 1].
  explicit Ewma(double alpha = 0.125) : alpha_(alpha) {}

  void observe(double sample) {
    if (!initialised_) {
      value_ = sample;
      initialised_ = true;
    } else {
      value_ += alpha_ * (sample - value_);
    }
  }

  [[nodiscard]] double value() const { return initialised_ ? value_ : 0.0; }
  [[nodiscard]] bool initialised() const { return initialised_; }

  void reset() {
    value_ = 0.0;
    initialised_ = false;
  }

 private:
  double alpha_;
  double value_ = 0.0;
  bool initialised_ = false;
};

}  // namespace nfv
