#include "common/histogram.hpp"

#include <algorithm>
#include <bit>
#include <cmath>

namespace nfv {

Histogram::Histogram(std::uint64_t max_value, unsigned buckets_per_octave)
    : max_value_(std::max<std::uint64_t>(max_value, 2)),
      buckets_per_octave_(std::max(1u, buckets_per_octave)) {
  const unsigned octaves = static_cast<unsigned>(std::bit_width(max_value_));
  counts_.assign(static_cast<std::size_t>(octaves) * buckets_per_octave_ + 1, 0);
}

std::size_t Histogram::bucket_index(std::uint64_t value) const {
  value = std::clamp<std::uint64_t>(value, 1, max_value_);
  // log2(value) * buckets_per_octave, computed without floating point for
  // the integer part and with a linear interpolation within the octave.
  const unsigned msb = static_cast<unsigned>(std::bit_width(value)) - 1;
  const std::uint64_t base = 1ULL << msb;
  const std::uint64_t frac_num = value - base;  // in [0, base)
  const std::size_t sub =
      base == 0 ? 0
                : static_cast<std::size_t>((frac_num * buckets_per_octave_) / base);
  const std::size_t index = static_cast<std::size_t>(msb) * buckets_per_octave_ + sub;
  return std::min(index, counts_.size() - 1);
}

std::uint64_t Histogram::bucket_representative(std::size_t index) const {
  const unsigned msb = static_cast<unsigned>(index / buckets_per_octave_);
  const std::size_t sub = index % buckets_per_octave_;
  const double base = std::ldexp(1.0, static_cast<int>(msb));
  const double lo = base * (1.0 + static_cast<double>(sub) / buckets_per_octave_);
  const double hi = base * (1.0 + static_cast<double>(sub + 1) / buckets_per_octave_);
  return static_cast<std::uint64_t>(std::sqrt(lo * hi));  // geometric midpoint
}

void Histogram::record(std::uint64_t value) {
  ++counts_[bucket_index(value)];
  ++count_;
  sum_ += value;
  if (count_ == 1) {
    min_ = max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
}

void Histogram::clear() {
  std::fill(counts_.begin(), counts_.end(), 0);
  count_ = sum_ = min_ = max_ = 0;
}

std::uint64_t Histogram::value_at_quantile(double q) const {
  if (count_ == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  if (q == 0.0) return min_;
  if (q == 1.0) return max_;
  const auto target = static_cast<std::uint64_t>(
      std::ceil(q * static_cast<double>(count_)));
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    seen += counts_[i];
    if (seen >= target && counts_[i] > 0) {
      // Clamp the representative to the observed extrema so single-value
      // histograms report that exact value.
      return std::clamp(bucket_representative(i), min_, max_);
    }
  }
  return max_;
}

void Histogram::merge(const Histogram& other) {
  const std::size_t n = std::min(counts_.size(), other.counts_.size());
  for (std::size_t i = 0; i < n; ++i) counts_[i] += other.counts_[i];
  if (other.count_ > 0) {
    min_ = count_ == 0 ? other.min_ : std::min(min_, other.min_);
    max_ = count_ == 0 ? other.max_ : std::max(max_, other.max_);
  }
  count_ += other.count_;
  sum_ += other.sum_;
}

}  // namespace nfv
