#include "common/rng.hpp"

#include <cmath>

namespace nfv {

double Rng::next_exponential(double mean) {
  // Inverse-CDF sampling; clamp the uniform away from 0 to avoid log(0).
  double u = next_double();
  if (u <= 0.0) u = 0x1.0p-53;
  return -mean * std::log(u);
}

std::size_t Rng::next_weighted(const double* weights, std::size_t n) {
  double total = 0.0;
  for (std::size_t i = 0; i < n; ++i) total += weights[i];
  if (total <= 0.0 || n == 0) return n == 0 ? 0 : n - 1;
  double target = next_double() * total;
  for (std::size_t i = 0; i < n; ++i) {
    target -= weights[i];
    if (target < 0.0) return i;
  }
  return n - 1;
}

}  // namespace nfv
