// Minimal deterministic JSON writer.
//
// The observability layer exports two machine-readable artifacts — the
// metrics registry dump and the Chrome trace_event stream — and both are
// covered by byte-identity determinism tests. Hence this writer: no
// locale-sensitive formatting, no hash-ordered containers, doubles printed
// with "%.17g" (round-trippable and bit-stable for the bit-identical values
// a same-seed simulation produces).
#pragma once

#include <cstdint>
#include <cstdio>
#include <ostream>
#include <string_view>
#include <vector>

namespace nfv::obs {

class JsonWriter {
 public:
  explicit JsonWriter(std::ostream& out) : out_(out) {}

  JsonWriter(const JsonWriter&) = delete;
  JsonWriter& operator=(const JsonWriter&) = delete;

  void begin_object() {
    separate();
    out_ << '{';
    stack_.push_back(false);
  }
  void end_object() {
    stack_.pop_back();
    out_ << '}';
  }
  void begin_array() {
    separate();
    out_ << '[';
    stack_.push_back(false);
  }
  void end_array() {
    stack_.pop_back();
    out_ << ']';
  }

  void key(std::string_view k) {
    separate();
    write_string(k);
    out_ << ':';
    pending_value_ = true;
  }

  void value(std::string_view s) {
    separate();
    write_string(s);
  }
  void value(const char* s) { value(std::string_view(s)); }
  void value(bool b) {
    separate();
    out_ << (b ? "true" : "false");
  }
  void value(std::uint64_t v) {
    separate();
    out_ << v;
  }
  void value(std::int64_t v) {
    separate();
    out_ << v;
  }
  void value(std::uint32_t v) { value(static_cast<std::uint64_t>(v)); }
  void value(std::int32_t v) { value(static_cast<std::int64_t>(v)); }
  void value(double v) {
    separate();
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    out_ << buf;
  }

  template <typename T>
  void field(std::string_view k, T v) {
    key(k);
    value(v);
  }

  /// Splice pre-serialized JSON (e.g. a registry dump) in value position.
  void raw(std::string_view json) {
    separate();
    out_ << json;
  }

 private:
  /// Emit the separating comma for the second and later items of the
  /// innermost container; a value immediately after key() never separates.
  void separate() {
    if (pending_value_) {
      pending_value_ = false;
      return;
    }
    if (!stack_.empty()) {
      if (stack_.back()) out_ << ',';
      stack_.back() = true;
    }
  }

  void write_string(std::string_view s) {
    out_ << '"';
    for (const char c : s) {
      switch (c) {
        case '"':
          out_ << "\\\"";
          break;
        case '\\':
          out_ << "\\\\";
          break;
        case '\n':
          out_ << "\\n";
          break;
        case '\r':
          out_ << "\\r";
          break;
        case '\t':
          out_ << "\\t";
          break;
        default:
          if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof(buf), "\\u%04x", c);
            out_ << buf;
          } else {
            out_ << c;
          }
      }
    }
    out_ << '"';
  }

  std::ostream& out_;
  std::vector<bool> stack_;  // per open container: "has at least one item"
  bool pending_value_ = false;
};

}  // namespace nfv::obs
