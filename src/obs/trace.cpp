#include "obs/trace.hpp"

#include <ostream>

#include "obs/json.hpp"

namespace nfv::obs {

void TraceRecorder::record(TraceEvent ev) {
  if (events_.size() >= config_.max_events) {
    ++dropped_;
    return;
  }
  events_.push_back(std::move(ev));
}

void TraceRecorder::write_chrome_json(std::ostream& out) const {
  const double cycles_per_us = config_.cpu_hz / 1e6;
  JsonWriter json(out);
  json.begin_object();
  json.key("traceEvents");
  json.begin_array();
  // Thread-name metadata first (Chrome reads 'M' events in any position,
  // but a fixed position keeps the stream canonical for diffing).
  for (const auto& [lane, name] : lane_names_) {
    json.begin_object();
    json.field("name", "thread_name");
    json.field("ph", "M");
    json.field("pid", std::uint64_t{0});
    json.field("tid", std::uint64_t{lane});
    json.key("args");
    json.begin_object();
    json.field("name", std::string_view(name));
    json.end_object();
    json.end_object();
  }
  for (const TraceEvent& ev : events_) {
    json.begin_object();
    json.field("name", std::string_view(ev.name));
    json.field("cat", std::string_view(ev.cat));
    json.key("ph");
    json.value(std::string_view(&ev.phase, 1));
    json.field("ts", static_cast<double>(ev.ts) / cycles_per_us);
    json.field("pid", std::uint64_t{0});
    json.field("tid", std::uint64_t{ev.lane});
    if (ev.phase == 'i') json.field("s", "t");  // instant scope: thread
    if (!ev.args.empty() || !ev.num_args.empty()) {
      json.key("args");
      json.begin_object();
      for (const auto& [k, v] : ev.args) {
        json.field(std::string_view(k), std::string_view(v));
      }
      for (const auto& [k, v] : ev.num_args) {
        json.field(std::string_view(k), v);
      }
      json.end_object();
    }
    json.end_object();
  }
  json.end_array();
  json.field("displayTimeUnit", "ns");
  json.key("otherData");
  json.begin_object();
  json.field("dropped_events", dropped_);
  json.field("cpu_hz", config_.cpu_hz);
  json.end_object();
  json.end_object();
}

}  // namespace nfv::obs
