#include "obs/metrics.hpp"

#include <algorithm>
#include <cassert>
#include <ostream>

#include "obs/json.hpp"

namespace nfv::obs {

std::string MetricsRegistry::make_key(const std::string& name,
                                      const Labels& labels) {
  std::string key = name;
  for (const auto& [k, v] : labels) {
    key += '\0';
    key += k;
    key += '\0';
    key += v;
  }
  return key;
}

MetricsRegistry::Entry& MetricsRegistry::get_or_create(const std::string& name,
                                                       Labels labels,
                                                       Kind kind) {
  std::sort(labels.begin(), labels.end());
  const std::string key = make_key(name, labels);
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    Entry entry;
    entry.name = name;
    entry.labels = std::move(labels);
    entry.kind = kind;
    it = entries_.emplace(key, std::move(entry)).first;
  }
  assert(it->second.kind == kind && "metric re-registered as another kind");
  return it->second;
}

const MetricsRegistry::Entry* MetricsRegistry::find(
    const std::string& name, const Labels& labels) const {
  Labels sorted = labels;
  std::sort(sorted.begin(), sorted.end());
  const auto it = entries_.find(make_key(name, sorted));
  return it == entries_.end() ? nullptr : &it->second;
}

Counter& MetricsRegistry::counter(const std::string& name, Labels labels) {
  Entry& entry = get_or_create(name, std::move(labels), Kind::kCounter);
  if (!entry.counter) entry.counter = std::make_unique<Counter>();
  return *entry.counter;
}

Gauge& MetricsRegistry::gauge(const std::string& name, Labels labels) {
  Entry& entry = get_or_create(name, std::move(labels), Kind::kGauge);
  if (!entry.gauge) entry.gauge = std::make_unique<Gauge>();
  return *entry.gauge;
}

Histogram& MetricsRegistry::histogram(const std::string& name, Labels labels,
                                      std::uint64_t max_value,
                                      unsigned buckets_per_octave) {
  Entry& entry = get_or_create(name, std::move(labels), Kind::kHistogram);
  if (!entry.histogram) {
    entry.histogram = std::make_unique<Histogram>(max_value, buckets_per_octave);
  }
  return *entry.histogram;
}

void MetricsRegistry::counter_fn(const std::string& name, Labels labels,
                                 std::function<std::uint64_t()> fn) {
  Entry& entry = get_or_create(name, std::move(labels), Kind::kCounterFn);
  entry.counter_fn = std::move(fn);
}

void MetricsRegistry::gauge_fn(const std::string& name, Labels labels,
                               std::function<double()> fn) {
  Entry& entry = get_or_create(name, std::move(labels), Kind::kGaugeFn);
  entry.gauge_fn = std::move(fn);
}

const Counter* MetricsRegistry::find_counter(const std::string& name,
                                             const Labels& labels) const {
  const Entry* entry = find(name, labels);
  return entry != nullptr && entry->kind == Kind::kCounter
             ? entry->counter.get()
             : nullptr;
}

const Gauge* MetricsRegistry::find_gauge(const std::string& name,
                                         const Labels& labels) const {
  const Entry* entry = find(name, labels);
  return entry != nullptr && entry->kind == Kind::kGauge ? entry->gauge.get()
                                                         : nullptr;
}

const Histogram* MetricsRegistry::find_histogram(const std::string& name,
                                                 const Labels& labels) const {
  const Entry* entry = find(name, labels);
  return entry != nullptr && entry->kind == Kind::kHistogram
             ? entry->histogram.get()
             : nullptr;
}

std::uint64_t MetricsRegistry::sample_counter(const std::string& name,
                                              const Labels& labels) const {
  const Entry* entry = find(name, labels);
  return entry != nullptr && entry->kind == Kind::kCounterFn && entry->counter_fn
             ? entry->counter_fn()
             : 0;
}

void MetricsRegistry::write_json_merged(
    const std::vector<const MetricsRegistry*>& parts, std::ostream& out) {
  struct Merged {
    const Entry* first = nullptr;
    std::uint64_t counter = 0;
    double gauge = 0.0;
    std::vector<const Histogram*> histograms;
    bool is_counter = false;
    bool is_gauge = false;
  };
  // std::map keyed identically to entries_, so the merged export iterates in
  // exactly the order write_json would.
  std::map<std::string, Merged> merged;
  for (const MetricsRegistry* part : parts) {
    if (part == nullptr) continue;
    for (const auto& [key, entry] : part->entries_) {
      Merged& m = merged[key];
      if (m.first == nullptr) m.first = &entry;
      switch (entry.kind) {
        case Kind::kCounter:
          m.is_counter = true;
          m.counter += entry.counter->value();
          break;
        case Kind::kCounterFn:
          m.is_counter = true;
          m.counter += entry.counter_fn ? entry.counter_fn() : 0;
          break;
        case Kind::kGauge:
          m.is_gauge = true;
          m.gauge += entry.gauge->value();
          break;
        case Kind::kGaugeFn:
          m.is_gauge = true;
          m.gauge += entry.gauge_fn ? entry.gauge_fn() : 0.0;
          break;
        case Kind::kHistogram:
          m.histograms.push_back(entry.histogram.get());
          break;
      }
      assert(!(m.is_counter && m.is_gauge) &&
             "series registered as counter in one registry, gauge in another");
      assert((m.histograms.empty() || (!m.is_counter && !m.is_gauge)) &&
             "series registered as histogram in one registry, scalar in another");
    }
  }

  JsonWriter json(out);
  json.begin_array();
  for (const auto& [key, m] : merged) {
    (void)key;
    const Entry& entry = *m.first;
    json.begin_object();
    json.field("name", std::string_view(entry.name));
    json.key("labels");
    json.begin_object();
    for (const auto& [k, v] : entry.labels) {
      json.field(std::string_view(k), std::string_view(v));
    }
    json.end_object();
    if (m.is_counter) {
      json.field("type", "counter");
      json.field("value", m.counter);
    } else if (m.is_gauge) {
      json.field("type", "gauge");
      json.field("value", m.gauge);
    } else {
      Histogram h = *m.histograms.front();
      for (std::size_t i = 1; i < m.histograms.size(); ++i) {
        h.merge(*m.histograms[i]);
      }
      json.field("type", "histogram");
      json.field("count", h.count());
      json.field("sum", h.sum());
      json.field("min", h.min());
      json.field("max", h.max());
      json.field("p50", h.value_at_quantile(0.50));
      json.field("p90", h.value_at_quantile(0.90));
      json.field("p99", h.value_at_quantile(0.99));
      json.field("p999", h.value_at_quantile(0.999));
    }
    json.end_object();
  }
  json.end_array();
}

void MetricsRegistry::write_json(std::ostream& out) const {
  JsonWriter json(out);
  json.begin_array();
  for (const auto& [key, entry] : entries_) {
    (void)key;
    json.begin_object();
    json.field("name", std::string_view(entry.name));
    json.key("labels");
    json.begin_object();
    for (const auto& [k, v] : entry.labels) {
      json.field(std::string_view(k), std::string_view(v));
    }
    json.end_object();
    switch (entry.kind) {
      case Kind::kCounter:
        json.field("type", "counter");
        json.field("value", entry.counter->value());
        break;
      case Kind::kCounterFn:
        json.field("type", "counter");
        json.field("value", entry.counter_fn ? entry.counter_fn() : 0);
        break;
      case Kind::kGauge:
        json.field("type", "gauge");
        json.field("value", entry.gauge->value());
        break;
      case Kind::kGaugeFn:
        json.field("type", "gauge");
        json.field("value", entry.gauge_fn ? entry.gauge_fn() : 0.0);
        break;
      case Kind::kHistogram: {
        const Histogram& h = *entry.histogram;
        json.field("type", "histogram");
        json.field("count", h.count());
        json.field("sum", h.sum());
        json.field("min", h.min());
        json.field("max", h.max());
        json.field("p50", h.value_at_quantile(0.50));
        json.field("p90", h.value_at_quantile(0.90));
        json.field("p99", h.value_at_quantile(0.99));
        json.field("p999", h.value_at_quantile(0.999));
        break;
      }
    }
    json.end_object();
  }
  json.end_array();
}

}  // namespace nfv::obs
