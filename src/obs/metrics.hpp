// Metrics registry: named counters/gauges/histograms with label scopes.
//
// Every layer of the platform (manager, cores, backpressure, libnf, async
// I/O) registers its telemetry here so that benches, the report_json()
// export and future dashboards read one uniform namespace instead of
// reaching into component structs. Conventions:
//
//   * names are dotted lowercase paths: "sched.context_switches",
//     "bp.throttle_entries", "mgr.rx_full_drops";
//   * scopes are labels: {"nf","NF1-low"}, {"core","core0"},
//     {"chain","lmh"} — one metric name can exist once per label set;
//   * registration is idempotent: asking for the same (name, labels) pair
//     returns the same instrument, so components can re-register freely.
//
// Two instrument families cover the hot-path/cold-path split:
//   * owned Counter/Gauge/Histogram instruments are incremented at the
//     event site (O(1), no allocation after registration);
//   * counter_fn/gauge_fn register a *sampled* probe evaluated only at
//     export time — zero added cost on the data path, used to project
//     long-standing component counters (NfCounters, ChainCounters, ...)
//     into the registry without double bookkeeping.
//
// Export order is deterministic (std::map over name + serialized labels),
// which the determinism regression suite relies on.
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/histogram.hpp"

namespace nfv::obs {

/// Label set: (key, value) pairs. Sorted by key at registration so that
/// {"a","1"},{"b","2"} and {"b","2"},{"a","1"} name the same series.
using Labels = std::vector<std::pair<std::string, std::string>>;

class Counter {
 public:
  void inc(std::uint64_t n = 1) { value_ += n; }
  [[nodiscard]] std::uint64_t value() const { return value_; }

 private:
  std::uint64_t value_ = 0;
};

class Gauge {
 public:
  void set(double v) { value_ = v; }
  void add(double d) { value_ += d; }
  [[nodiscard]] double value() const { return value_; }

 private:
  double value_ = 0.0;
};

/// Null-safe increment helpers: instrumented components hold Counter*
/// pointers that stay nullptr until an Observability context is attached.
inline void inc(Counter* c, std::uint64_t n = 1) {
  if (c != nullptr) c->inc(n);
}
inline void set(Gauge* g, double v) {
  if (g != nullptr) g->set(v);
}

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Get-or-create instruments. The returned reference is stable for the
  /// registry's lifetime. A (name, labels) pair registered as one kind
  /// must not be re-registered as another (asserted).
  Counter& counter(const std::string& name, Labels labels = {});
  Gauge& gauge(const std::string& name, Labels labels = {});
  Histogram& histogram(const std::string& name, Labels labels = {},
                       std::uint64_t max_value = (1ULL << 40),
                       unsigned buckets_per_octave = 8);

  /// Sampled probes: `fn` is evaluated at export time only.
  void counter_fn(const std::string& name, Labels labels,
                  std::function<std::uint64_t()> fn);
  void gauge_fn(const std::string& name, Labels labels,
                std::function<double()> fn);

  /// Lookup without creating; nullptr when the series does not exist.
  [[nodiscard]] const Counter* find_counter(const std::string& name,
                                            const Labels& labels = {}) const;
  [[nodiscard]] const Gauge* find_gauge(const std::string& name,
                                        const Labels& labels = {}) const;
  [[nodiscard]] const Histogram* find_histogram(
      const std::string& name, const Labels& labels = {}) const;
  /// Value of a sampled (counter_fn) probe; 0 when absent.
  [[nodiscard]] std::uint64_t sample_counter(const std::string& name,
                                             const Labels& labels = {}) const;

  [[nodiscard]] std::size_t size() const { return entries_.size(); }

  /// Dump every series as a JSON array, sorted by (name, labels):
  ///   [{"name":...,"labels":{...},"type":"counter","value":N}, ...]
  /// Histograms export count/sum/min/max plus p50/p90/p99/p999.
  void write_json(std::ostream& out) const;

  /// Union of several registries in one export, in the same format and sort
  /// order as write_json. Series that appear in more than one registry are
  /// combined: counters (owned and sampled) sum, gauges sum, histograms
  /// merge (identical bucketing required, as with Histogram::merge). The
  /// sharded simulation uses this to present its per-lane registries as the
  /// single namespace a one-lane run would produce.
  static void write_json_merged(const std::vector<const MetricsRegistry*>& parts,
                                std::ostream& out);

 private:
  enum class Kind { kCounter, kGauge, kHistogram, kCounterFn, kGaugeFn };

  struct Entry {
    std::string name;
    Labels labels;
    Kind kind;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
    std::function<std::uint64_t()> counter_fn;
    std::function<double()> gauge_fn;
  };

  /// Map key: name + '\0' + serialized sorted labels (unambiguous because
  /// '\0' cannot appear in names or labels).
  static std::string make_key(const std::string& name, const Labels& labels);
  Entry& get_or_create(const std::string& name, Labels labels, Kind kind);
  [[nodiscard]] const Entry* find(const std::string& name,
                                  const Labels& labels) const;

  std::map<std::string, Entry> entries_;
};

/// A registry view that appends a fixed label set to every registration —
/// the per-NF / per-core / per-chain scopes components hand out internally.
class Scope {
 public:
  Scope() = default;
  Scope(MetricsRegistry* registry, Labels labels)
      : registry_(registry), labels_(std::move(labels)) {}

  [[nodiscard]] bool attached() const { return registry_ != nullptr; }

  Counter* counter(const std::string& name) {
    return attached() ? &registry_->counter(name, labels_) : nullptr;
  }
  Gauge* gauge(const std::string& name) {
    return attached() ? &registry_->gauge(name, labels_) : nullptr;
  }
  Histogram* histogram(const std::string& name,
                       std::uint64_t max_value = (1ULL << 40),
                       unsigned buckets_per_octave = 8) {
    return attached() ? &registry_->histogram(name, labels_, max_value,
                                              buckets_per_octave)
                      : nullptr;
  }
  void counter_fn(const std::string& name, std::function<std::uint64_t()> fn) {
    if (attached()) registry_->counter_fn(name, labels_, std::move(fn));
  }
  void gauge_fn(const std::string& name, std::function<double()> fn) {
    if (attached()) registry_->gauge_fn(name, labels_, std::move(fn));
  }

  [[nodiscard]] const Labels& labels() const { return labels_; }

 private:
  MetricsRegistry* registry_ = nullptr;
  Labels labels_;
};

}  // namespace nfv::obs
