// Structured event tracing on the simulation's deterministic clock.
//
// A TraceRecorder captures the control-plane events the paper's figures
// are built from — context switches, wakeups, yields, backpressure
// CLEAR→WATCH→THROTTLE transitions, cpu.shares writes, ECN marks, drops —
// as timestamped records, and exports them in the Chrome trace_event JSON
// format (open chrome://tracing or https://ui.perfetto.dev and load the
// file). Timestamps come from the event engine, so two same-seed runs
// produce byte-identical streams: the determinism suite diffs them.
//
// Recording is opt-in. Components hold a nullable recorder pointer (via
// obs::Observability) and skip all event construction when none is
// attached — the null-sink fast path; an unattached simulation pays one
// pointer test per would-be event.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "common/time.hpp"

namespace nfv::obs {

/// Trace lanes ("tid" in the Chrome format). Cores use their index; the
/// manager's actor threads get fixed high lanes so they never collide.
inline constexpr std::uint32_t kManagerLane = 900;
inline constexpr std::uint32_t kBackpressureLane = 901;
inline constexpr std::uint32_t kLifecycleLane = 902;
/// Storage fault domain: device fault windows, I/O timeouts/retries,
/// degraded-mode entry/exit (DESIGN.md §12).
inline constexpr std::uint32_t kIoLane = 903;
/// Latency-SLO controller (DESIGN.md §16): per-chain p99 samples,
/// violation begin/end edges, share-boost counter series.
inline constexpr std::uint32_t kSloLane = 904;
/// Overload control (DESIGN.md §17): admission-gate engage/release
/// instants, ingress-discard drops, push-aside grab/give-back edges.
inline constexpr std::uint32_t kAdmissionLane = 905;

struct TraceEvent {
  Cycles ts = 0;            ///< Engine time the event fired.
  char phase = 'i';         ///< Chrome phase: 'i' instant, 'C' counter.
  std::uint32_t lane = 0;   ///< Rendered as the Chrome thread id.
  std::string cat;          ///< Category, e.g. "sched", "bp", "mgr".
  std::string name;         ///< Event name, e.g. "ctx_switch".
  std::vector<std::pair<std::string, std::string>> args;      ///< String args.
  std::vector<std::pair<std::string, std::int64_t>> num_args; ///< Numeric args.
};

class TraceRecorder {
 public:
  struct Config {
    /// Ring-less cap: events past the cap are counted, not stored. Keeps a
    /// pathological run (millions of drops) from exhausting memory while
    /// preserving determinism of what *is* stored.
    std::size_t max_events = 1'000'000;
    /// Used only to convert cycle timestamps to the microseconds Chrome
    /// expects on export.
    double cpu_hz = kDefaultCpuHz;
  };

  TraceRecorder() = default;
  explicit TraceRecorder(Config config) : config_(config) {}

  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  /// Record an instant event. Convenience over record() for call sites.
  void instant(
      Cycles ts, std::uint32_t lane, std::string cat, std::string name,
      std::vector<std::pair<std::string, std::string>> args = {},
      std::vector<std::pair<std::string, std::int64_t>> num_args = {}) {
    TraceEvent ev;
    ev.ts = ts;
    ev.phase = 'i';
    ev.lane = lane;
    ev.cat = std::move(cat);
    ev.name = std::move(name);
    ev.args = std::move(args);
    ev.num_args = std::move(num_args);
    record(std::move(ev));
  }

  /// Record a Chrome counter event (renders as a stacked time series).
  void counter(Cycles ts, std::uint32_t lane, std::string cat,
               std::string name, std::string series, std::int64_t value) {
    TraceEvent ev;
    ev.ts = ts;
    ev.phase = 'C';
    ev.lane = lane;
    ev.cat = std::move(cat);
    ev.name = std::move(name);
    ev.num_args.emplace_back(std::move(series), value);
    record(std::move(ev));
  }

  void record(TraceEvent ev);

  /// Human-readable lane name, exported as Chrome thread_name metadata.
  void set_lane_name(std::uint32_t lane, std::string name) {
    lane_names_[lane] = std::move(name);
  }

  /// Full export: {"traceEvents":[...]} with thread metadata first.
  void write_chrome_json(std::ostream& out) const;

  [[nodiscard]] const std::vector<TraceEvent>& events() const {
    return events_;
  }
  [[nodiscard]] std::uint64_t dropped_events() const { return dropped_; }
  [[nodiscard]] const Config& config() const { return config_; }

  void clear() {
    events_.clear();
    dropped_ = 0;
  }

 private:
  Config config_;
  std::vector<TraceEvent> events_;
  std::map<std::uint32_t, std::string> lane_names_;
  std::uint64_t dropped_ = 0;
};

}  // namespace nfv::obs
