// The observability context threaded through the platform.
//
// One Observability instance per Simulation bundles the always-on metrics
// registry with an optional trace recorder. Components take a nullable
// Observability* (so they stay constructible in isolation for unit tests)
// and guard every trace emission behind trace() — the null-sink fast path:
// with no recorder attached an instrumented call site costs one or two
// pointer tests and nothing else.
#pragma once

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace nfv::obs {

class Observability {
 public:
  Observability() = default;
  Observability(const Observability&) = delete;
  Observability& operator=(const Observability&) = delete;

  [[nodiscard]] MetricsRegistry& metrics() { return metrics_; }
  [[nodiscard]] const MetricsRegistry& metrics() const { return metrics_; }

  /// Attach (or detach with nullptr) a trace recorder. Not owned; the
  /// recorder must outlive tracing activity.
  void attach_trace(TraceRecorder* recorder) { trace_ = recorder; }
  [[nodiscard]] TraceRecorder* trace() const { return trace_; }

  /// Scope helpers establishing the platform's label conventions.
  [[nodiscard]] Scope nf_scope(const std::string& nf_name) {
    return Scope(&metrics_, {{"nf", nf_name}});
  }
  [[nodiscard]] Scope core_scope(const std::string& core_name) {
    return Scope(&metrics_, {{"core", core_name}});
  }
  [[nodiscard]] Scope chain_scope(const std::string& chain_name) {
    return Scope(&metrics_, {{"chain", chain_name}});
  }
  [[nodiscard]] Scope global_scope() { return Scope(&metrics_, {}); }

 private:
  MetricsRegistry metrics_;
  TraceRecorder* trace_ = nullptr;
};

/// Null-safe accessor for optional contexts.
inline TraceRecorder* trace_of(Observability* obs) {
  return obs != nullptr ? obs->trace() : nullptr;
}

}  // namespace nfv::obs
