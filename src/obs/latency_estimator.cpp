#include "obs/latency_estimator.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace nfv::obs {

namespace {

/// Nearest-rank index: the ceil(q*n)-th smallest, clamped into [0, n-1].
std::size_t rank_index(double q, std::size_t n) {
  assert(n > 0);
  const auto rank = static_cast<std::size_t>(std::ceil(q * static_cast<double>(n)));
  return rank == 0 ? 0 : std::min(rank - 1, n - 1);
}

std::uint64_t rank_of(std::vector<std::uint64_t>& samples, double q) {
  const std::size_t idx = rank_index(q, samples.size());
  std::nth_element(samples.begin(),
                   samples.begin() + static_cast<std::ptrdiff_t>(idx),
                   samples.end());
  return samples[idx];
}

}  // namespace

LatencyEstimator::LatencyEstimator(std::size_t window)
    : ring_(window > 0 ? window : 1) {}

void LatencyEstimator::append_samples(std::vector<std::uint64_t>& out) const {
  if (size_ == 0) return;
  // Oldest-first: when full the oldest sample sits at next_, otherwise the
  // ring has not wrapped and the window starts at slot 0.
  const std::size_t start = size_ == ring_.size() ? next_ : 0;
  for (std::size_t i = 0; i < size_; ++i) {
    std::size_t slot = start + i;
    if (slot >= ring_.size()) slot -= ring_.size();
    out.push_back(ring_[slot]);
  }
}

LatencyEstimator::Snapshot LatencyEstimator::snapshot_of(
    std::vector<std::uint64_t> samples, std::uint64_t total_count) {
  Snapshot s;
  s.samples = samples.size();
  s.total_count = total_count;
  if (samples.empty()) return s;
  s.p50 = rank_of(samples, 0.50);
  s.p95 = rank_of(samples, 0.95);
  s.p99 = rank_of(samples, 0.99);
  s.max = *std::max_element(samples.begin(), samples.end());
  return s;
}

LatencyEstimator::Snapshot LatencyEstimator::snapshot() const {
  scratch_.clear();
  append_samples(scratch_);
  Snapshot s;
  s.samples = size_;
  s.total_count = total_;
  if (scratch_.empty()) return s;
  s.p50 = rank_of(scratch_, 0.50);
  s.p95 = rank_of(scratch_, 0.95);
  s.p99 = rank_of(scratch_, 0.99);
  s.max = *std::max_element(scratch_.begin(), scratch_.end());
  return s;
}

std::uint64_t LatencyEstimator::quantile(double q) const {
  if (size_ == 0) return 0;
  scratch_.clear();
  append_samples(scratch_);
  return rank_of(scratch_, q);
}

}  // namespace nfv::obs
