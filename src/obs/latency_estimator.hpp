// Fixed-window tail-latency percentile estimator (DESIGN.md §16).
//
// A LatencyEstimator keeps the most recent `window` latency samples in a
// circular buffer and answers p50/p95/p99/max queries over that window by
// copying the held samples and running std::nth_element on the copy — the
// BESS NFVMonitor::GetTailLatency technique. Recording is O(1) with zero
// steady-state allocation (the ring is sized once at construction); a
// snapshot costs O(window) into a reused scratch buffer and never disturbs
// the ring, so back-to-back snapshots of an idle estimator are identical.
//
// The quantile definition is the nearest-rank rule the exemplar uses:
// over n held samples, quantile q is the ceil(q*n)-th smallest (so p99 of
// 100 samples is the 99th smallest, and any q over a single sample is
// that sample). Snapshots are a pure function of the held multiset, which
// is what makes the shard-merge path exact: concatenating the per-lane
// windows in lane order and calling snapshot_of() yields byte-identical
// results at any worker count, because lane decomposition — and with it
// which lane records which sample — is fixed by the topology.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace nfv::obs {

class LatencyEstimator {
 public:
  /// Window quantiles plus lifetime counters, all computed in one pass.
  struct Snapshot {
    std::uint64_t p50 = 0;
    std::uint64_t p95 = 0;
    std::uint64_t p99 = 0;
    std::uint64_t max = 0;          ///< max of the held window
    std::size_t samples = 0;        ///< samples currently held (<= window)
    std::uint64_t total_count = 0;  ///< samples ever recorded
  };

  /// Default window: ~2k samples bounds the snapshot cost while covering
  /// several monitor periods of egress at the rates the benches drive.
  static constexpr std::size_t kDefaultWindow = 2048;

  explicit LatencyEstimator(std::size_t window = kDefaultWindow);

  /// O(1), allocation-free: overwrite the oldest sample once full.
  void record(std::uint64_t sample) {
    ring_[next_] = sample;
    next_ = next_ + 1 == ring_.size() ? 0 : next_ + 1;
    if (size_ < ring_.size()) ++size_;
    ++total_;
  }

  /// Copy the window and rank it; the ring itself is never reordered.
  [[nodiscard]] Snapshot snapshot() const;

  /// Nearest-rank quantile of the held window (0 when empty).
  [[nodiscard]] std::uint64_t quantile(double q) const;

  /// Append the held samples (oldest first) to `out` — the shard-merge
  /// path concatenates per-lane windows with this before snapshot_of().
  void append_samples(std::vector<std::uint64_t>& out) const;

  /// The shared quantile kernel: rank an arbitrary sample set under the
  /// same nearest-rank rule snapshot() uses. Takes the samples by value
  /// (nth_element reorders them); `total_count` passes through.
  [[nodiscard]] static Snapshot snapshot_of(std::vector<std::uint64_t> samples,
                                            std::uint64_t total_count);

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] std::size_t window() const { return ring_.size(); }
  [[nodiscard]] std::uint64_t total_count() const { return total_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }

  void clear() {
    next_ = 0;
    size_ = 0;
    total_ = 0;
  }

 private:
  std::vector<std::uint64_t> ring_;
  std::size_t next_ = 0;   ///< slot the next sample lands in
  std::size_t size_ = 0;   ///< held samples (ring fill level)
  std::uint64_t total_ = 0;
  /// Reused snapshot copy, so repeated queries allocate only on growth.
  mutable std::vector<std::uint64_t> scratch_;
};

}  // namespace nfv::obs
