// Per-packet processing-cost models.
//
// The paper's NFs are characterised by their per-packet CPU cost in cycles
// (e.g. 120/270/550 in Fig. 7, up to 4500 in Table 5) and §2 stresses that
// "an NF may have variable per-packet costs". The cost model captures the
// variants the evaluation uses: fixed cost, a uniform choice among classes
// (Fig. 10's 120/270/550 mix), a class looked up from packet metadata, and
// a runtime scale knob for the dynamic-adaptation experiment (Fig. 15a,
// where NF1's cost triples mid-run).
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "common/time.hpp"
#include "pktio/mbuf.hpp"

namespace nfv::nf {

class CostModel {
 public:
  /// Every packet costs exactly `cycles`.
  static CostModel fixed(Cycles cycles);

  /// Each packet independently costs one of `choices`, uniformly at random
  /// (deterministic under `seed`). Models §4.3.1's variable costs.
  static CostModel uniform_choice(std::vector<Cycles> choices,
                                  std::uint64_t seed = 0x5eed);

  /// Cost selected by the packet's cost_class field (clamped to range).
  static CostModel per_class(std::vector<Cycles> class_costs);

  /// Cost of processing this packet now, including the dynamic scale.
  [[nodiscard]] Cycles sample(const pktio::Mbuf& mbuf);

  /// Multiply all costs by `scale` from now on (Fig. 15a's step change).
  void set_scale(double scale) { scale_ = scale; }
  [[nodiscard]] double scale() const { return scale_; }

  /// Nominal (unscaled mean) cost, for reporting and capacity math.
  [[nodiscard]] Cycles nominal() const;

 private:
  enum class Kind { kFixed, kUniformChoice, kPerClass };

  CostModel(Kind kind, std::vector<Cycles> values, std::uint64_t seed)
      : kind_(kind), values_(std::move(values)), rng_(seed) {}

  Kind kind_;
  std::vector<Cycles> values_;
  Rng rng_;
  double scale_ = 1.0;
};

}  // namespace nfv::nf
