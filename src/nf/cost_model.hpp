// Per-packet processing-cost models.
//
// The paper's NFs are characterised by their per-packet CPU cost in cycles
// (e.g. 120/270/550 in Fig. 7, up to 4500 in Table 5) and §2 stresses that
// "an NF may have variable per-packet costs". The cost model captures the
// variants the evaluation uses: fixed cost, a uniform choice among classes
// (Fig. 10's 120/270/550 mix), a class looked up from packet metadata, a
// state-dependent probe (the cost a stateful NF pays depends on what its
// flow table does with the packet: hit, miss, evict), and a runtime scale
// knob for the dynamic-adaptation experiment (Fig. 15a, where NF1's cost
// triples mid-run).
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "common/rng.hpp"
#include "common/time.hpp"
#include "pktio/mbuf.hpp"

namespace nfv::nf {

class CostModel {
 public:
  /// Every packet costs exactly `cycles`.
  static CostModel fixed(Cycles cycles);

  /// Each packet independently costs one of `choices`, uniformly at random
  /// (deterministic under `seed`). Models §4.3.1's variable costs.
  static CostModel uniform_choice(std::vector<Cycles> choices,
                                  std::uint64_t seed = 0x5eed);

  /// Cost selected by the packet's cost_class field (clamped to range).
  static CostModel per_class(std::vector<Cycles> class_costs);

  /// Cost decided by a probe that inspects — and may transition — the NF's
  /// per-flow state (install/touch/evict in its flow table). libnf runs the
  /// probe once per packet at burst-assembly time, in dequeue order, which
  /// is exactly the order handlers later run in — so the cost sequence (and
  /// the state it leaves behind) is identical at any burst window. The
  /// probe may stash a result for the handler in mbuf.nf_scratch.
  /// `nominal_cost` seeds capacity math before any samples exist.
  static CostModel state_dependent(
      std::function<Cycles(pktio::Mbuf&)> probe, Cycles nominal_cost);

  /// Cost of processing this packet now, including the dynamic scale.
  /// Non-const mbuf: a state-dependent probe may write nf_scratch.
  [[nodiscard]] Cycles sample(pktio::Mbuf& mbuf);

  /// Multiply all costs by `scale` from now on (Fig. 15a's step change).
  void set_scale(double scale) { scale_ = scale; }
  [[nodiscard]] double scale() const { return scale_; }

  /// Nominal (unscaled mean) cost, for reporting and capacity math.
  [[nodiscard]] Cycles nominal() const;

 private:
  enum class Kind { kFixed, kUniformChoice, kPerClass, kStateDependent };

  CostModel(Kind kind, std::vector<Cycles> values, std::uint64_t seed)
      : kind_(kind), values_(std::move(values)), rng_(seed) {}

  Kind kind_;
  std::vector<Cycles> values_;
  Rng rng_;
  double scale_ = 1.0;
  std::function<Cycles(pktio::Mbuf&)> probe_;
};

}  // namespace nfv::nf
