#include "nf/cost_model.hpp"

#include <algorithm>
#include <cassert>
#include <numeric>

namespace nfv::nf {

CostModel CostModel::fixed(Cycles cycles) {
  return CostModel(Kind::kFixed, {cycles}, 0);
}

CostModel CostModel::uniform_choice(std::vector<Cycles> choices,
                                    std::uint64_t seed) {
  assert(!choices.empty());
  return CostModel(Kind::kUniformChoice, std::move(choices), seed);
}

CostModel CostModel::per_class(std::vector<Cycles> class_costs) {
  assert(!class_costs.empty());
  return CostModel(Kind::kPerClass, std::move(class_costs), 0);
}

CostModel CostModel::state_dependent(
    std::function<Cycles(pktio::Mbuf&)> probe, Cycles nominal_cost) {
  assert(probe);
  CostModel model(Kind::kStateDependent, {nominal_cost}, 0);
  model.probe_ = std::move(probe);
  return model;
}

Cycles CostModel::sample(pktio::Mbuf& mbuf) {
  Cycles base = 0;
  switch (kind_) {
    case Kind::kFixed:
      base = values_[0];
      break;
    case Kind::kUniformChoice:
      base = values_[rng_.next_below(values_.size())];
      break;
    case Kind::kPerClass:
      base = values_[std::min<std::size_t>(mbuf.cost_class, values_.size() - 1)];
      break;
    case Kind::kStateDependent:
      base = probe_(mbuf);
      break;
  }
  const auto scaled = static_cast<Cycles>(static_cast<double>(base) * scale_);
  return std::max<Cycles>(1, scaled);
}

Cycles CostModel::nominal() const {
  const Cycles sum = std::accumulate(values_.begin(), values_.end(), Cycles{0});
  return sum / static_cast<Cycles>(values_.size());
}

}  // namespace nfv::nf
