// libnf: the network-function runtime.
//
// Each NF links against libnf, which mediates "all interactions with the
// management layer" (§3.2): it reads packets from the NF's receive ring in
// batches of at most 32, invokes the NF's packet handler, writes results to
// the TX ring, checks the shared-memory relinquish flag between batches,
// blocks the NF on its semaphore when there is nothing (or it is told not)
// to do, samples per-packet processing time at ~1 kHz into a histogram
// shared with the NF Manager (§3.5), and yields when the async I/O engine's
// double buffers are both full (§3.4).
//
// NfTask is both the libnf instance and the schedulable process: the Core
// dispatches/preempts it, and while it holds the CPU it executes packets in
// run-to-completion bursts — one engine event per burst, with per-packet
// costs laid out on a local virtual clock (see DESIGN.md §9).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/histogram.hpp"
#include "common/moving_window.hpp"
#include "io/async_io.hpp"
#include "obs/observability.hpp"
#include "nf/cost_model.hpp"
#include "pktio/ring.hpp"
#include "sched/core.hpp"
#include "sched/task.hpp"
#include "sim/engine.hpp"

namespace nfv::nf {

/// What the NF's packet handler wants done with the packet.
enum class NfAction {
  kForward,  ///< Enqueue to the TX ring (next NF in chain, or the wire).
  kDrop,     ///< NF-initiated drop (e.g. a firewall verdict).
};

struct NfCounters {
  std::uint64_t arrivals = 0;        ///< Packets enqueued to the RX ring.
  std::uint64_t processed = 0;       ///< Packets whose handler completed.
  std::uint64_t forwarded = 0;       ///< Packets placed on the TX ring.
  std::uint64_t handler_drops = 0;   ///< Dropped by the NF's own verdict.
  std::uint64_t batch_yields = 0;    ///< Yields forced by the relinquish flag.
  std::uint64_t empty_blocks = 0;    ///< Blocks because the RX ring drained.
  std::uint64_t tx_full_blocks = 0;  ///< Local backpressure blocks (§3.3).
  std::uint64_t io_blocks = 0;       ///< Blocks with both I/O buffers full.
  std::uint64_t numa_remote_packets = 0;  ///< Paid the cross-node penalty.
  /// In-flight burst packets lost when the process crashed (fault model,
  /// DESIGN.md §11). Conservation: admitted = egress + drops + crash_drops
  /// + queued.
  std::uint64_t crash_drops = 0;
};

class NfTask : public sched::Task {
 public:
  struct Config {
    std::string name = "nf";
    CostModel cost = CostModel::fixed(250);
    std::uint32_t rx_capacity = 1024;
    std::uint32_t tx_capacity = 4096;
    std::uint32_t batch_size = 32;
    double high_watermark = 0.80;  ///< RX ring thresholds (§4.3.8 tuning).
    double low_watermark = 0.60;
    Cycles sample_interval = 2'600'000;  ///< 1 ms at 2.6 GHz (1 kHz, §3.5).
    Cycles sample_window = 260'000'000;  ///< 100 ms moving window (§3.5).
    unsigned warmup_samples = 10;        ///< Discarded for cache warm-up.
    double priority = 1.0;               ///< Operator priority_i (§3.2).
    /// Extra per-packet cycles when the packet's buffer lives on another
    /// NUMA node (§1: scheduling must be "cognizant of NUMA concerns").
    Cycles numa_penalty = 300;
    /// Packets executed per engine event (run-to-completion burst). The
    /// burst is assembled up front — per-packet cost sampled, NUMA penalty
    /// charged, completion times laid out on a local virtual clock — and a
    /// single event fires at the accumulated completion time. Capped by
    /// batch_size, TX space and the core's preemption horizon; 1 restores
    /// the seed's one-event-per-packet behaviour exactly (the equivalence
    /// suite pins this). NFs with attached async I/O always run at 1, since
    /// libnf checks would_block() before every packet.
    std::uint32_t burst_window = 32;
  };

  /// Handler invoked per packet, in addition to the modelled CPU cost.
  /// May call io().write()/read(). Default (unset) forwards every packet.
  using Handler = std::function<NfAction(pktio::Mbuf&)>;

  /// Platform callbacks (installed by the NF Manager).
  using Notify = std::function<void(NfTask&)>;
  using Release = std::function<void(pktio::Mbuf*)>;

  NfTask(sim::Engine& engine, Config config);
  ~NfTask() override;

  // -- wiring (done once by the platform) ---------------------------------
  void set_handler(Handler handler) { handler_ = std::move(handler); }
  void set_tx_notify(Notify notify) { tx_notify_ = std::move(notify); }
  void set_packet_release(Release release) { release_ = std::move(release); }
  void attach_io(io::AsyncIoEngine* io_engine);

  /// Project libnf's counters and queue depths into the metrics registry
  /// under the {"nf", name} scope. Sampled probes only — the packet loop
  /// pays nothing. Null-safe.
  void set_observability(obs::Observability* obs);

  // -- data plane ----------------------------------------------------------
  [[nodiscard]] pktio::Ring& rx_ring() { return rx_ring_; }
  [[nodiscard]] const pktio::Ring& rx_ring() const { return rx_ring_; }
  [[nodiscard]] pktio::Ring& tx_ring() { return tx_ring_; }
  [[nodiscard]] const pktio::Ring& tx_ring() const { return tx_ring_; }

  /// Called by the manager after a successful RX enqueue (rate estimation).
  void note_arrival() { ++counters_.arrivals; }

  // -- shared-memory flags (manager <-> libnf) ----------------------------
  /// Relinquish-CPU flag checked after each batch (§3.2).
  void set_yield_flag(bool value) { yield_flag_ = value; }
  [[nodiscard]] bool yield_flag() const { return yield_flag_; }

  /// Overload flag set by the Tx thread from enqueue feedback (§3.5); the
  /// Wakeup thread consumes it when classifying NFs.
  void set_overload_flag(bool value) { overload_flag_ = value; }
  [[nodiscard]] bool overload_flag() const { return overload_flag_; }

  // -- monitor-facing -------------------------------------------------------
  /// Median sampled service time (cycles) over the moving window; 0 when no
  /// samples yet. This is the s_i in load(i) = λ_i * s_i.
  [[nodiscard]] Cycles estimated_service_time(Cycles now) {
    return static_cast<Cycles>(window_.median(now));
  }
  [[nodiscard]] const Histogram& cost_histogram() const { return histogram_; }
  [[nodiscard]] const NfCounters& counters() const { return counters_; }
  [[nodiscard]] double priority() const { return config_.priority; }
  [[nodiscard]] CostModel& cost_model() { return cost_; }
  [[nodiscard]] const Config& config() const { return config_; }
  [[nodiscard]] io::AsyncIoEngine* io() { return io_; }

  /// True when waking the NF would let it make progress.
  [[nodiscard]] bool has_runnable_work() const;

  // -- fault & lifecycle (driven by the platform's fault subsystem) --------
  /// The process dies, now: the CPU is torn away (packets that genuinely
  /// completed before this instant are still finalized at their exact
  /// times), the rest of the in-flight burst is released back to the pool
  /// as crash_drops, and the task goes DEAD — invisible to wakeups until
  /// revive(). The RX/TX rings are untouched: they live in manager-owned
  /// shared memory and survive the process (OpenNetVM's model).
  void crash();
  /// The process becomes a straggler, now: it freezes mid-instruction —
  /// any in-flight burst is held hostage, no completion ever fires — but
  /// keeps (or takes) the CPU and burns cycles without progress, until the
  /// manager's watchdog declares it STUCK and crash()es it.
  void stall();
  /// Cold restart after a crash: clears dead/stalled, restarts the §3.5
  /// warm-up sample discard (caches are cold again).
  void revive(Cycles now);
  [[nodiscard]] bool dead() const { return dead_; }
  [[nodiscard]] bool stalled() const { return stalled_; }

  /// Packets dequeued from the RX ring into the current burst but not yet
  /// finalized. Conservation accounting must count these alongside ring
  /// occupancy: they are alive in the pool but visible in no queue.
  [[nodiscard]] std::size_t in_flight_packets() const {
    return burst_.size() - burst_pos_;
  }

  // -- sched::Task ----------------------------------------------------------
  void on_dispatch(Cycles now) override;
  void on_preempt(Cycles now) override;

 private:
  /// One packet's slot in the assembled burst: cost was sampled and the
  /// completion time laid out on the local virtual clock at assembly time.
  struct BurstEntry {
    pktio::Mbuf* pkt;
    Cycles cost;     ///< Sampled service time (incl. NUMA penalty).
    Cycles done_at;  ///< Virtual completion time within the burst.
  };

  void start_next_burst(Cycles now);
  void on_burst_done();
  void finalize_packet(const BurstEntry& entry);
  void block_self();
  void maybe_sample(Cycles now, Cycles cost);

  sim::Engine& engine_;
  Config config_;
  CostModel cost_;
  pktio::Ring rx_ring_;
  pktio::Ring tx_ring_;

  Handler handler_;
  Notify tx_notify_;
  Release release_;
  io::AsyncIoEngine* io_ = nullptr;

  bool yield_flag_ = false;
  bool overload_flag_ = false;
  bool dead_ = false;
  bool stalled_ = false;

  // In-flight burst state across preemptions. Entries before burst_pos_
  // are finalized (handler ran, packet left the NF); burst_pos_ onward are
  // dequeued-but-unexecuted packets this task still owns. When preempted,
  // resume_remaining_ holds the unserved cycles of entry burst_pos_.
  std::vector<BurstEntry> burst_;
  std::size_t burst_pos_ = 0;
  Cycles resume_remaining_ = 0;
  sim::EventId work_event_ = sim::kInvalidEventId;
  std::uint32_t batch_count_ = 0;

  // Service-time estimation (§3.5).
  MovingWindow window_;
  Histogram histogram_;
  Cycles next_sample_time_ = 0;
  unsigned warmup_left_;

  NfCounters counters_;
};

}  // namespace nfv::nf
