#include "nf/nf_task.hpp"

#include <algorithm>
#include <cassert>
#include <utility>

#include "common/logging.hpp"

namespace nfv::nf {

NfTask::NfTask(sim::Engine& engine, Config config)
    : sched::Task(config.name),
      engine_(engine),
      config_(config),
      cost_(config.cost),
      rx_ring_(config.rx_capacity, config.high_watermark, config.low_watermark),
      tx_ring_(config.tx_capacity),
      window_(config.sample_window),
      warmup_left_(config.warmup_samples) {
  burst_.reserve(std::max<std::uint32_t>(1, config_.burst_window));
}

NfTask::~NfTask() {
  // A queued completion event holds a raw `this`; never let it outlive us.
  if (work_event_ != sim::kInvalidEventId) engine_.cancel(work_event_);
}

void NfTask::set_observability(obs::Observability* obs) {
  if (obs == nullptr) return;
  obs::Scope scope = obs->nf_scope(config_.name);
  scope.counter_fn("nf.arrivals", [this] { return counters_.arrivals; });
  scope.counter_fn("nf.processed", [this] { return counters_.processed; });
  scope.counter_fn("nf.forwarded", [this] { return counters_.forwarded; });
  scope.counter_fn("nf.handler_drops",
                   [this] { return counters_.handler_drops; });
  scope.counter_fn("nf.batch_yields", [this] { return counters_.batch_yields; });
  scope.counter_fn("nf.empty_blocks", [this] { return counters_.empty_blocks; });
  scope.counter_fn("nf.tx_full_blocks",
                   [this] { return counters_.tx_full_blocks; });
  scope.counter_fn("nf.io_blocks", [this] { return counters_.io_blocks; });
  scope.counter_fn("nf.crash_drops", [this] { return counters_.crash_drops; });
  scope.counter_fn("nf.numa_remote_packets",
                   [this] { return counters_.numa_remote_packets; });
  scope.counter_fn("nf.runtime_cycles", [this] {
    return static_cast<std::uint64_t>(stats().runtime);
  });
  scope.counter_fn("nf.wakeups", [this] { return stats().wakeups; });
  scope.counter_fn("nf.voluntary_switches",
                   [this] { return stats().voluntary_switches; });
  scope.counter_fn("nf.involuntary_switches",
                   [this] { return stats().involuntary_switches; });
  scope.gauge_fn("nf.rx_queue_len",
                 [this] { return static_cast<double>(rx_ring_.size()); });
  scope.gauge_fn("nf.tx_queue_len",
                 [this] { return static_cast<double>(tx_ring_.size()); });
  scope.gauge_fn("nf.service_time_p50_cycles", [this] {
    return static_cast<double>(histogram_.value_at_quantile(0.5));
  });
}

void NfTask::attach_io(io::AsyncIoEngine* io_engine) {
  io_ = io_engine;
  if (io_ == nullptr) return;
  // When the flush completes and a buffer frees up, the NF becomes
  // runnable again; the completion context plays the manager's role of
  // posting the semaphore.
  io_->set_unblock_callback([this] {
    if (state() == sched::TaskState::kBlocked && has_runnable_work()) {
      core()->wake(this);
    }
  });
  // Storage fault domain, on_io_fail = stuck: an unrecoverable I/O failure
  // freezes the NF exactly like an injected stall — it spins on the CPU
  // until the watchdog's evidence-based diagnosis force-kills and restarts
  // it (DeadNfPolicy then governs the chain).
  io_->set_fatal_callback([this] {
    if (dead_ || stalled_) return;
    stall();
    if (state() == sched::TaskState::kBlocked && core() != nullptr) {
      core()->wake(this);
    }
  });
}

bool NfTask::has_runnable_work() const {
  if (dead_) return false;
  // A straggler spins: it always "wants" the CPU and ignores the
  // relinquish flag (a hung process checks no shared-memory flags).
  if (stalled_) return true;
  if (yield_flag_) return false;
  if (io_ != nullptr && io_->would_block()) return false;
  if (tx_ring_.full()) return false;
  return burst_pos_ < burst_.size() || !rx_ring_.empty();
}

void NfTask::on_dispatch(Cycles now) {
  // A straggler holds the CPU without scheduling work: it stays kRunning,
  // burns cycles (tick accounting charges it), and never yields. Only a
  // tick/wakeup preemption or the watchdog's crash() takes the core back.
  if (stalled_) return;
  if (burst_pos_ < burst_.size() && work_event_ == sim::kInvalidEventId) {
    // Resume the burst that was in flight when we were preempted: replay
    // the remaining virtual clock from now. The burst is not extended with
    // new RX arrivals — the split already sampled these packets' costs.
    Cycles cursor = now + resume_remaining_;
    resume_remaining_ = 0;
    burst_[burst_pos_].done_at = cursor;
    for (std::size_t i = burst_pos_ + 1; i < burst_.size(); ++i) {
      cursor += burst_[i].cost;
      burst_[i].done_at = cursor;
    }
    work_event_ = engine_.schedule_at(cursor, [this] { on_burst_done(); });
    return;
  }
  start_next_burst(now);
}

void NfTask::on_preempt(Cycles now) {
  if (work_event_ == sim::kInvalidEventId) return;  // preempted mid-switch
  engine_.cancel(work_event_);
  work_event_ = sim::kInvalidEventId;
  // Split the burst at the preemption point: packets whose virtual
  // completion time already passed are really done — finalize them at
  // their exact times. The packet straddling `now` stays in flight with
  // its unserved remainder (strict <: completing exactly at the preempt
  // instant still counts as in flight, as the per-packet engine did).
  while (burst_pos_ < burst_.size() && burst_[burst_pos_].done_at < now) {
    finalize_packet(burst_[burst_pos_]);
    ++burst_pos_;
  }
  assert(burst_pos_ < burst_.size() && "armed burst cannot be fully done");
  resume_remaining_ = burst_[burst_pos_].done_at - now;
  assert(resume_remaining_ >= 0);
}

void NfTask::crash() {
  if (dead_) return;
  // Tear the CPU away first: the preempt path inside force_block finalizes
  // packets whose virtual completion already passed (they really finished
  // before the crash instant) and charges the runtime consumed so far.
  core()->force_block(this);
  if (work_event_ != sim::kInvalidEventId) {
    engine_.cancel(work_event_);
    work_event_ = sim::kInvalidEventId;
  }
  // The rest of the in-flight burst dies with the process: these
  // descriptors were dequeued into the NF's private batch and nothing can
  // recover them. The RX/TX rings survive (shared memory).
  for (std::size_t i = burst_pos_; i < burst_.size(); ++i) {
    ++counters_.crash_drops;
    if (release_) release_(burst_[i].pkt);
  }
  burst_.clear();
  burst_pos_ = 0;
  resume_remaining_ = 0;
  batch_count_ = 0;
  stalled_ = false;
  dead_ = true;
}

void NfTask::stall() {
  if (dead_ || stalled_) return;
  stalled_ = true;
  // Freeze mid-instruction: the pending completion never fires and any
  // in-flight burst is held hostage (conservation still counts it via
  // in_flight_packets()). The task keeps spinning on the CPU from here.
  if (work_event_ != sim::kInvalidEventId) {
    engine_.cancel(work_event_);
    work_event_ = sim::kInvalidEventId;
  }
}

void NfTask::revive(Cycles now) {
  dead_ = false;
  stalled_ = false;
  // Cold process: caches and the service-time estimator start over, as at
  // launch — the §3.5 warm-up samples are discarded again.
  warmup_left_ = config_.warmup_samples;
  next_sample_time_ = now;
  batch_count_ = 0;
}

void NfTask::start_next_burst(Cycles now) {
  assert(burst_pos_ >= burst_.size());

  // The relinquish flag is honoured at batch boundaries only (§3.2): here
  // when a fresh batch would start, and in on_burst_done() after a full
  // batch. Mid-batch changes wait for the boundary, as in libnf.
  if (batch_count_ == 0 && yield_flag_) {
    ++counters_.batch_yields;
    block_self();
    return;
  }
  if (io_ != nullptr && io_->would_block()) {
    ++counters_.io_blocks;
    block_self();
    return;
  }
  if (tx_ring_.full()) {
    // Local backpressure: "when the transmit ring out of an NF is full,
    // that NF suspends processing packets until room is created" (§4.1).
    ++counters_.tx_full_blocks;
    block_self();
    return;
  }

  pktio::Mbuf* pkt = rx_ring_.dequeue();
  if (pkt == nullptr) {
    ++counters_.empty_blocks;
    block_self();
    return;
  }

  // Size the burst: the relinquish-flag boundary (batch_size) and the TX
  // space guarantee must hold for every packet, and an NF doing async I/O
  // re-checks would_block() before each packet, so it runs unbatched.
  const std::uint32_t window =
      io_ != nullptr ? 1 : std::max<std::uint32_t>(1, config_.burst_window);
  const std::size_t max_k = std::min<std::size_t>(
      std::min<std::size_t>(window, config_.batch_size - batch_count_),
      tx_ring_.capacity() - tx_ring_.size());
  // Cap at the next possible tick preemption so the common case completes
  // without a split. Exactness does not depend on this: overshooting (a
  // wakeup preemption, a stale horizon) is healed by the on_preempt split.
  const Cycles horizon =
      max_k > 1 ? core()->preemption_horizon() : sched::kUnboundedSlack;
  const int local_node = core()->numa_node();

  burst_.clear();
  burst_pos_ = 0;
  Cycles cursor = now;
  while (true) {
    Cycles cost = cost_.sample(*pkt);
    // First touch of a buffer produced on another socket costs extra; the
    // data is local (cached here) from now on.
    if (pkt->numa_node != local_node) {
      cost += config_.numa_penalty;
      pkt->numa_node = static_cast<std::int8_t>(local_node);
      ++counters_.numa_remote_packets;
    }
    cursor += cost;
    burst_.push_back(BurstEntry{pkt, cost, cursor});
    if (burst_.size() >= max_k || cursor >= horizon) break;
    pkt = rx_ring_.dequeue();
    if (pkt == nullptr) break;
  }
  work_event_ = engine_.schedule_at(cursor, [this] { on_burst_done(); });
}

void NfTask::on_burst_done() {
  const Cycles now = engine_.now();
  work_event_ = sim::kInvalidEventId;
  while (burst_pos_ < burst_.size()) {
    finalize_packet(burst_[burst_pos_]);
    ++burst_pos_;
  }
  burst_.clear();
  burst_pos_ = 0;

  // Batch boundary: after at most `batch_size` packets, honour the
  // manager's relinquish flag (§3.2). Burst assembly never crosses the
  // boundary, so the wrap can only land here, after a whole burst.
  if (batch_count_ >= config_.batch_size) {
    batch_count_ = 0;
    if (yield_flag_) {
      ++counters_.batch_yields;
      block_self();
      return;
    }
  }

  if (state() != sched::TaskState::kRunning) return;  // preempted meanwhile
  start_next_burst(now);
}

void NfTask::finalize_packet(const BurstEntry& entry) {
  maybe_sample(entry.done_at, entry.cost);
  ++counters_.processed;

  pktio::Mbuf* pkt = entry.pkt;
  const NfAction action = handler_ ? handler_(*pkt) : NfAction::kForward;
  if (action == NfAction::kDrop) {
    ++counters_.handler_drops;
    if (release_) release_(pkt);
  } else {
    // Room for the whole burst was guaranteed at assembly and only the
    // manager's Tx thread drains this ring, so enqueue cannot fail.
    const auto result = tx_ring_.enqueue(pkt);
    assert(result != pktio::EnqueueResult::kFull);
    (void)result;
    ++counters_.forwarded;
    if (tx_notify_) tx_notify_(*this);
  }
  ++batch_count_;
}

void NfTask::block_self() {
  batch_count_ = 0;
  core()->yield_current(this, /*will_block=*/true);
}

void NfTask::maybe_sample(Cycles now, Cycles cost) {
  // §3.5: per-packet rdtsc on every packet would flush the pipeline, so
  // libnf samples roughly once per millisecond and the first few samples
  // are discarded to account for cache warm-up.
  if (now < next_sample_time_) return;
  next_sample_time_ = now + config_.sample_interval;
  if (warmup_left_ > 0) {
    --warmup_left_;
    return;
  }
  window_.record(now, static_cast<std::uint64_t>(cost));
  histogram_.record(static_cast<std::uint64_t>(cost));
}

}  // namespace nfv::nf
