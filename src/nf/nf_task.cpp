#include "nf/nf_task.hpp"

#include <cassert>
#include <utility>

#include "common/logging.hpp"

namespace nfv::nf {

NfTask::NfTask(sim::Engine& engine, Config config)
    : sched::Task(config.name),
      engine_(engine),
      config_(config),
      cost_(config.cost),
      rx_ring_(config.rx_capacity, config.high_watermark, config.low_watermark),
      tx_ring_(config.tx_capacity),
      window_(config.sample_window),
      warmup_left_(config.warmup_samples) {}

void NfTask::set_observability(obs::Observability* obs) {
  if (obs == nullptr) return;
  obs::Scope scope = obs->nf_scope(config_.name);
  scope.counter_fn("nf.arrivals", [this] { return counters_.arrivals; });
  scope.counter_fn("nf.processed", [this] { return counters_.processed; });
  scope.counter_fn("nf.forwarded", [this] { return counters_.forwarded; });
  scope.counter_fn("nf.handler_drops",
                   [this] { return counters_.handler_drops; });
  scope.counter_fn("nf.batch_yields", [this] { return counters_.batch_yields; });
  scope.counter_fn("nf.empty_blocks", [this] { return counters_.empty_blocks; });
  scope.counter_fn("nf.tx_full_blocks",
                   [this] { return counters_.tx_full_blocks; });
  scope.counter_fn("nf.io_blocks", [this] { return counters_.io_blocks; });
  scope.counter_fn("nf.numa_remote_packets",
                   [this] { return counters_.numa_remote_packets; });
  scope.counter_fn("nf.runtime_cycles", [this] {
    return static_cast<std::uint64_t>(stats().runtime);
  });
  scope.counter_fn("nf.wakeups", [this] { return stats().wakeups; });
  scope.counter_fn("nf.voluntary_switches",
                   [this] { return stats().voluntary_switches; });
  scope.counter_fn("nf.involuntary_switches",
                   [this] { return stats().involuntary_switches; });
  scope.gauge_fn("nf.rx_queue_len",
                 [this] { return static_cast<double>(rx_ring_.size()); });
  scope.gauge_fn("nf.tx_queue_len",
                 [this] { return static_cast<double>(tx_ring_.size()); });
  scope.gauge_fn("nf.service_time_p50_cycles", [this] {
    return static_cast<double>(histogram_.value_at_quantile(0.5));
  });
}

void NfTask::attach_io(io::AsyncIoEngine* io_engine) {
  io_ = io_engine;
  if (io_ == nullptr) return;
  // When the flush completes and a buffer frees up, the NF becomes
  // runnable again; the completion context plays the manager's role of
  // posting the semaphore.
  io_->set_unblock_callback([this] {
    if (state() == sched::TaskState::kBlocked && has_runnable_work()) {
      core()->wake(this);
    }
  });
}

bool NfTask::has_runnable_work() const {
  if (yield_flag_) return false;
  if (io_ != nullptr && io_->would_block()) return false;
  if (tx_ring_.full()) return false;
  return current_pkt_ != nullptr || !rx_ring_.empty();
}

void NfTask::on_dispatch(Cycles now) {
  if (current_pkt_ != nullptr && work_event_ == sim::kInvalidEventId) {
    // Resume the packet that was in flight when we were preempted.
    work_complete_time_ = now + resume_remaining_;
    resume_remaining_ = 0;
    work_event_ =
        engine_.schedule_after(work_complete_time_ - now, [this] { on_packet_done(); });
    return;
  }
  start_next_packet(now);
}

void NfTask::on_preempt(Cycles now) {
  if (work_event_ != sim::kInvalidEventId) {
    engine_.cancel(work_event_);
    work_event_ = sim::kInvalidEventId;
    resume_remaining_ = work_complete_time_ - now;
    assert(resume_remaining_ >= 0);
  }
}

void NfTask::start_next_packet(Cycles now) {
  assert(current_pkt_ == nullptr);

  // The relinquish flag is honoured at batch boundaries only (§3.2): here
  // when a fresh batch would start, and in on_packet_done() after a full
  // batch. Mid-batch changes wait for the boundary, as in libnf.
  if (batch_count_ == 0 && yield_flag_) {
    ++counters_.batch_yields;
    block_self();
    return;
  }
  if (io_ != nullptr && io_->would_block()) {
    ++counters_.io_blocks;
    block_self();
    return;
  }
  if (tx_ring_.full()) {
    // Local backpressure: "when the transmit ring out of an NF is full,
    // that NF suspends processing packets until room is created" (§4.1).
    ++counters_.tx_full_blocks;
    block_self();
    return;
  }

  pktio::Mbuf* pkt = rx_ring_.dequeue();
  if (pkt == nullptr) {
    ++counters_.empty_blocks;
    block_self();
    return;
  }

  current_pkt_ = pkt;
  current_cost_ = cost_.sample(*pkt);
  // First touch of a buffer produced on another socket costs extra; the
  // data is local (cached here) from now on.
  const int local_node = core()->numa_node();
  if (pkt->numa_node != local_node) {
    current_cost_ += config_.numa_penalty;
    pkt->numa_node = static_cast<std::int8_t>(local_node);
    ++counters_.numa_remote_packets;
  }
  work_complete_time_ = now + current_cost_;
  work_event_ =
      engine_.schedule_after(current_cost_, [this] { on_packet_done(); });
}

void NfTask::on_packet_done() {
  const Cycles now = engine_.now();
  work_event_ = sim::kInvalidEventId;
  pktio::Mbuf* pkt = current_pkt_;
  current_pkt_ = nullptr;

  maybe_sample(now, current_cost_);
  ++counters_.processed;

  const NfAction action = handler_ ? handler_(*pkt) : NfAction::kForward;
  if (action == NfAction::kDrop) {
    ++counters_.handler_drops;
    if (release_) release_(pkt);
  } else {
    // Room was guaranteed before the packet was started and only the
    // manager's Tx thread drains this ring, so enqueue cannot fail.
    const auto result = tx_ring_.enqueue(pkt);
    assert(result != pktio::EnqueueResult::kFull);
    (void)result;
    ++counters_.forwarded;
    if (tx_notify_) tx_notify_(*this);
  }

  // Batch boundary: after at most `batch_size` packets, honour the
  // manager's relinquish flag (§3.2).
  if (++batch_count_ >= config_.batch_size) {
    batch_count_ = 0;
    if (yield_flag_) {
      ++counters_.batch_yields;
      block_self();
      return;
    }
  }

  if (state() != sched::TaskState::kRunning) return;  // preempted meanwhile
  start_next_packet(now);
}

void NfTask::block_self() {
  batch_count_ = 0;
  core()->yield_current(this, /*will_block=*/true);
}

void NfTask::maybe_sample(Cycles now, Cycles cost) {
  // §3.5: per-packet rdtsc on every packet would flush the pipeline, so
  // libnf samples roughly once per millisecond and the first few samples
  // are discarded to account for cache warm-up.
  if (now < next_sample_time_) return;
  next_sample_time_ = now + config_.sample_interval;
  if (warmup_left_ > 0) {
    --warmup_left_;
    return;
  }
  window_.record(now, static_cast<std::uint64_t>(cost));
  histogram_.record(static_cast<std::uint64_t>(cost));
}

}  // namespace nfv::nf
