#include "traffic/tcp_source.hpp"

#include <algorithm>

namespace nfv::traffic {

TcpSource::TcpSource(sim::Engine& engine, mgr::Manager& manager,
                     pktio::MbufPool& pool, flow::FlowId flow_id,
                     Config config)
    : engine_(engine),
      manager_(manager),
      pool_(pool),
      flow_id_(flow_id),
      config_(config),
      cwnd_(config.initial_cwnd),
      ssthresh_(config.initial_ssthresh) {}

void TcpSource::start() {
  manager_.set_egress_sink(flow_id_, [this](const pktio::Mbuf& pkt) {
    ++delivered_total_;
    if (pkt.ecn_marked) ++marks_seen_;
  });
  const Cycles first = std::max(config_.start_time, engine_.now());
  engine_.schedule_at(first, [this] { send_window(); });
}

void TcpSource::send_window() {
  if (config_.stop_time >= 0 && engine_.now() >= config_.stop_time) return;
  window_target_ = cwnd_;
  window_emitted_ = 0;
  delivered_at_window_start_ = delivered_total_;
  marks_at_window_start_ = marks_seen_;
  emit_packet();
}

void TcpSource::emit_packet() {
  pktio::Mbuf* pkt = pool_.alloc();
  if (pkt != nullptr) {
    pkt->size_bytes = config_.size_bytes;
    pkt->is_tcp = true;
    pkt->ecn_capable = config_.ecn_capable;
    pkt->seq = sent_total_;
    ++sent_total_;
    manager_.ingress(pkt, config_.key);
  }
  ++window_emitted_;

  if (window_emitted_ < window_target_) {
    // Pace the window evenly across the RTT.
    engine_.schedule_after(config_.rtt / window_target_,
                           [this] { emit_packet(); });
  } else {
    // Acks for the tail of the window arrive one RTT after it was sent.
    engine_.schedule_after(config_.rtt, [this] { evaluate_window(); });
  }
}

void TcpSource::evaluate_window() {
  const std::uint64_t delivered = delivered_total_ - delivered_at_window_start_;
  const std::uint64_t marked = marks_seen_ - marks_at_window_start_;
  const bool lost = delivered < window_target_;

  if (lost || marked > 0) {
    // Multiplicative decrease, once per RTT (RFC 3168 §6.1.2 for marks).
    ssthresh_ = std::max<std::uint32_t>(2, cwnd_ / 2);
    cwnd_ = ssthresh_;
    ++congestion_events_;
    if (!lost && marked > 0) ++ecn_backoffs_;
  } else if (cwnd_ < ssthresh_) {
    cwnd_ = std::min(cwnd_ * 2, ssthresh_);  // slow start
  } else {
    cwnd_ = std::min(cwnd_ + 1, config_.max_cwnd);  // congestion avoidance
  }
  cwnd_ = std::max<std::uint32_t>(1, std::min(cwnd_, config_.max_cwnd));
  send_window();
}

}  // namespace nfv::traffic
