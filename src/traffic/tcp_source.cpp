#include "traffic/tcp_source.hpp"

#include <algorithm>

namespace nfv::traffic {

TcpSource::TcpSource(sim::Engine& engine, mgr::Manager& manager,
                     pktio::MbufPool& pool, flow::FlowId flow_id,
                     Config config)
    : engine_(engine),
      manager_(manager),
      pool_(pool),
      flow_id_(flow_id),
      config_(config),
      cwnd_(config.initial_cwnd),
      ssthresh_(config.initial_ssthresh) {}

TcpSource::~TcpSource() {
  if (pending_ != sim::kInvalidEventId) engine_.cancel(pending_);
}

void TcpSource::start() {
  manager_.set_egress_sink(flow_id_, [this](const pktio::Mbuf& pkt) {
    ++delivered_total_;
    if (pkt.ecn_marked) ++marks_seen_;
  });
  const Cycles first = std::max(config_.start_time, engine_.now());
  pending_ = engine_.schedule_at(first, [this] {
    pending_ = sim::kInvalidEventId;
    send_window();
  });
}

void TcpSource::send_window() {
  if (config_.stop_time >= 0 && engine_.now() >= config_.stop_time) return;
  window_target_ = cwnd_;
  window_emitted_ = 0;
  delivered_at_window_start_ = delivered_total_;
  marks_at_window_start_ = marks_seen_;
  // The window's first packet goes out right now; the rest are paced in
  // groups of up to `burst` behind it.
  emit_one(engine_.now());
  ++window_emitted_;
  after_emit(engine_.now());
}

void TcpSource::emit_one(Cycles arrival) {
  pktio::Mbuf* pkt = pool_.alloc();
  if (pkt != nullptr) {
    pkt->size_bytes = config_.size_bytes;
    pkt->is_tcp = true;
    pkt->ecn_capable = config_.ecn_capable;
    pkt->seq = sent_total_;
    ++sent_total_;
    manager_.ingress(pkt, config_.key, arrival);
  }
}

void TcpSource::emit_group(Cycles first, std::uint32_t count) {
  pending_ = sim::kInvalidEventId;
  // Delivered at the group's last pacing slot; each packet still carries
  // its exact pacing time.
  const Cycles gap = config_.rtt / window_target_;
  Cycles t = first;
  for (std::uint32_t i = 0; i < count; ++i) {
    emit_one(t);
    ++window_emitted_;
    if (i + 1 < count) t += gap;
  }
  after_emit(t);
}

void TcpSource::after_emit(Cycles last_emit) {
  if (window_emitted_ < window_target_) {
    // Pace the window evenly across the RTT.
    const Cycles gap = config_.rtt / window_target_;
    const std::uint32_t count =
        std::min(std::max<std::uint32_t>(1, config_.burst),
                 window_target_ - window_emitted_);
    const Cycles first = last_emit + gap;
    const Cycles last = first + static_cast<Cycles>(count - 1) * gap;
    pending_ = engine_.schedule_at(
        last, [this, first, count] { emit_group(first, count); });
  } else {
    // Acks for the tail of the window arrive one RTT after it was sent.
    pending_ = engine_.schedule_after(config_.rtt, [this] {
      pending_ = sim::kInvalidEventId;
      evaluate_window();
    });
  }
}

void TcpSource::evaluate_window() {
  const std::uint64_t delivered = delivered_total_ - delivered_at_window_start_;
  const std::uint64_t marked = marks_seen_ - marks_at_window_start_;
  const bool lost = delivered < window_target_;

  if (lost || marked > 0) {
    // Multiplicative decrease, once per RTT (RFC 3168 §6.1.2 for marks).
    ssthresh_ = std::max<std::uint32_t>(2, cwnd_ / 2);
    cwnd_ = ssthresh_;
    ++congestion_events_;
    if (!lost && marked > 0) ++ecn_backoffs_;
  } else if (cwnd_ < ssthresh_) {
    cwnd_ = std::min(cwnd_ * 2, ssthresh_);  // slow start
  } else {
    cwnd_ = std::min(cwnd_ + 1, config_.max_cwnd);  // congestion avoidance
  }
  cwnd_ = std::max<std::uint32_t>(1, std::min(cwnd_, config_.max_cwnd));
  send_window();
}

}  // namespace nfv::traffic
