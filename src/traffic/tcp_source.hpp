// Responsive TCP traffic source (iperf3 stand-in) with ECN support.
//
// Fig. 13's performance-isolation experiment needs a flow that *reacts* to
// congestion: it backs off on loss and on ECN marks, and ramps up when the
// path is clear. This source implements window-based AIMD with slow start:
// each round it paces `cwnd` packets across one RTT, observes how many made
// it out of the egress (and whether any carried an ECN mark), then halves
// on congestion or grows otherwise. Losses inside the NF platform — entry
// discards or ring overflows — show up as missing deliveries.
#pragma once

#include <cstdint>

#include "mgr/manager.hpp"
#include "pktio/flow_key.hpp"
#include "pktio/mempool.hpp"
#include "sim/engine.hpp"

namespace nfv::traffic {

class TcpSource {
 public:
  struct Config {
    pktio::FlowKey key;  ///< proto must be kProtoTcp; installed in the table.
    std::uint16_t size_bytes = 1500;
    Cycles rtt = 520'000;  ///< 200 us at 2.6 GHz (back-to-back testbed).
    std::uint32_t initial_cwnd = 10;
    std::uint32_t max_cwnd = 4096;
    std::uint32_t initial_ssthresh = 256;
    bool ecn_capable = true;
    Cycles start_time = 0;
    Cycles stop_time = -1;
    /// Packets delivered per pacing event where the window allows: after
    /// the first packet of a window (emitted at its exact time), groups of
    /// up to `burst` packets arrive from one callback at the group's last
    /// pacing slot, each stamped with its exact pacing time. 1 = the
    /// seed's one-event-per-packet pacing.
    std::uint32_t burst = 1;
  };

  TcpSource(sim::Engine& engine, mgr::Manager& manager, pktio::MbufPool& pool,
            flow::FlowId flow_id, Config config);
  /// Cancels the pending pacing/ack event — a queued callback must never
  /// outlive the source it captured.
  ~TcpSource();

  TcpSource(const TcpSource&) = delete;
  TcpSource& operator=(const TcpSource&) = delete;

  /// Register the egress sink and arm the first window. Call once after
  /// Manager::start().
  void start();

  [[nodiscard]] std::uint32_t cwnd() const { return cwnd_; }
  [[nodiscard]] std::uint64_t packets_sent() const { return sent_total_; }
  [[nodiscard]] std::uint64_t packets_delivered() const { return delivered_total_; }
  [[nodiscard]] std::uint64_t congestion_events() const { return congestion_events_; }
  [[nodiscard]] std::uint64_t ecn_backoffs() const { return ecn_backoffs_; }

 private:
  void send_window();
  void emit_one(Cycles arrival);
  void emit_group(Cycles first, std::uint32_t count);
  void after_emit(Cycles last_emit);
  void evaluate_window();

  sim::Engine& engine_;
  mgr::Manager& manager_;
  pktio::MbufPool& pool_;
  flow::FlowId flow_id_;
  Config config_;
  sim::EventId pending_ = sim::kInvalidEventId;

  std::uint32_t cwnd_;
  std::uint32_t ssthresh_;
  std::uint64_t sent_total_ = 0;
  std::uint64_t delivered_total_ = 0;
  std::uint64_t congestion_events_ = 0;
  std::uint64_t ecn_backoffs_ = 0;

  // Per-window bookkeeping.
  std::uint32_t window_target_ = 0;
  std::uint32_t window_emitted_ = 0;
  std::uint64_t delivered_at_window_start_ = 0;
  std::uint64_t marks_at_window_start_ = 0;
  std::uint64_t marks_seen_ = 0;
};

}  // namespace nfv::traffic
