// Open-loop UDP traffic source (MoonGen / Pktgen / iperf3-UDP stand-in).
//
// The paper's generators emit constant-rate flows of configurable packet
// size — 64-byte packets at 10 Gb/s line rate is 14.88 Mpps (§4.1). This
// source pre-draws `burst` inter-arrival gaps per timer event and delivers
// that many ingress calls — each stamped with its exact per-packet arrival
// time — from one callback, then re-arms at the last arrival. The gap
// sequence consumed is identical at any burst setting, so burst=1
// reproduces the seed's one-event-per-packet schedule exactly. Being open
// loop, it never backs off: exactly the "non-responsive" traffic
// backpressure exists for.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "mgr/manager.hpp"
#include "pktio/flow_key.hpp"
#include "pktio/mempool.hpp"
#include "sim/engine.hpp"

namespace nfv::traffic {

/// 10 GbE line rate for 64-byte frames (with preamble + IFG): 14.88 Mpps.
inline constexpr double kLineRate64B = 14'880'000.0;

class UdpSource {
 public:
  struct Config {
    pktio::FlowKey key;           ///< Must be installed in the flow table.
    double rate_pps = 1e6;        ///< Offered load in packets per second.
    std::uint16_t size_bytes = 64;
    Cycles start_time = 0;
    Cycles stop_time = -1;  ///< -1 (max) = run until simulation end.
    std::uint8_t cost_classes = 0;  ///< >0: tag packets 0..n-1 round-robin.
    /// Per-packet inter-arrival jitter as a fraction of the interval
    /// (uniform, zero-mean). Real generators are never perfectly phase
    /// locked; without this, same-rate flows emit at identical timestamps
    /// and ring-full drops bias deterministically toward one flow.
    double jitter_fraction = 0.1;
    /// Poisson arrivals (exponential inter-arrival times at the same mean
    /// rate) instead of jittered CBR — burstier, for sensitivity studies.
    bool poisson = false;
    std::uint64_t seed = 0x9e3779b9ULL;
    /// Arrivals delivered per timer event (1 = one event per packet, the
    /// seed behaviour). Timestamps are exact at any setting.
    std::uint32_t burst = 1;
  };

  UdpSource(sim::Engine& engine, mgr::Manager& manager, pktio::MbufPool& pool,
            const CpuClock& clock, Config config);
  /// Cancels any pending emit event — a queued callback must never outlive
  /// the source it captured.
  ~UdpSource();

  UdpSource(const UdpSource&) = delete;
  UdpSource& operator=(const UdpSource&) = delete;

  /// Arm the first arrival. Call once after Manager::start().
  void start();

  [[nodiscard]] std::uint64_t packets_sent() const { return sent_; }
  [[nodiscard]] std::uint64_t alloc_drops() const { return alloc_drops_; }

 private:
  void arm();
  void emit_batch();
  void emit_one(Cycles arrival);
  [[nodiscard]] Cycles draw_gap();

  sim::Engine& engine_;
  mgr::Manager& manager_;
  pktio::MbufPool& pool_;
  Config config_;
  Cycles interval_;
  Rng rng_;
  /// Arrival timestamps of the armed batch, and the first arrival of the
  /// batch after it (its gap is drawn at arming time so the consumed gap
  /// sequence never depends on the burst setting).
  std::vector<Cycles> batch_;
  Cycles next_time_ = 0;
  sim::EventId pending_ = sim::kInvalidEventId;
  std::uint64_t sent_ = 0;
  std::uint64_t alloc_drops_ = 0;
  std::uint8_t next_class_ = 0;
};

}  // namespace nfv::traffic
