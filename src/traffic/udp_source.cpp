#include "traffic/udp_source.hpp"

#include <algorithm>
#include <cassert>

namespace nfv::traffic {

UdpSource::UdpSource(sim::Engine& engine, mgr::Manager& manager,
                     pktio::MbufPool& pool, const CpuClock& clock,
                     Config config)
    : engine_(engine),
      manager_(manager),
      pool_(pool),
      config_(config),
      rng_(config.seed ^ config.key.src_ip) {
  assert(config_.rate_pps > 0.0);
  interval_ = std::max<Cycles>(1, clock.from_seconds(1.0 / config_.rate_pps));
  batch_.reserve(std::max<std::uint32_t>(1, config_.burst));
}

UdpSource::~UdpSource() {
  if (pending_ != sim::kInvalidEventId) engine_.cancel(pending_);
}

void UdpSource::start() {
  next_time_ = std::max(config_.start_time, engine_.now());
  arm();
}

Cycles UdpSource::draw_gap() {
  // Zero-mean uniform jitter keeps the long-run rate exact while breaking
  // inter-flow phase locking; Poisson mode draws exponential gaps instead.
  Cycles gap = interval_;
  if (config_.poisson) {
    gap = static_cast<Cycles>(
        rng_.next_exponential(static_cast<double>(interval_)));
  } else if (config_.jitter_fraction > 0.0) {
    const double u = 2.0 * rng_.next_double() - 1.0;  // [-1, 1)
    gap += static_cast<Cycles>(u * config_.jitter_fraction *
                               static_cast<double>(interval_));
  }
  return gap < 1 ? 1 : gap;
}

void UdpSource::arm() {
  // Lay out the next `burst` arrival times, then draw one further gap for
  // the batch after this one. Gap j always separates arrivals j and j+1,
  // so the consumed RNG sequence — and with it every arrival timestamp —
  // is independent of the burst setting.
  const std::uint32_t k = std::max<std::uint32_t>(1, config_.burst);
  batch_.clear();
  batch_.push_back(next_time_);
  for (std::uint32_t i = 1; i < k; ++i) {
    batch_.push_back(batch_.back() + draw_gap());
  }
  next_time_ = batch_.back() + draw_gap();
  pending_ = engine_.schedule_at(batch_.back(), [this] { emit_batch(); });
}

void UdpSource::emit_batch() {
  pending_ = sim::kInvalidEventId;
  for (const Cycles t : batch_) {
    if (config_.stop_time >= 0 && t >= config_.stop_time) return;  // halt
    emit_one(t);
  }
  arm();
}

void UdpSource::emit_one(Cycles arrival) {
  pktio::Mbuf* pkt = pool_.alloc();
  if (pkt == nullptr) {
    ++alloc_drops_;
    return;
  }
  pkt->size_bytes = config_.size_bytes;
  pkt->is_tcp = false;
  pkt->seq = sent_;
  if (config_.cost_classes > 0) {
    pkt->cost_class = next_class_;
    next_class_ = static_cast<std::uint8_t>((next_class_ + 1) %
                                            config_.cost_classes);
  }
  ++sent_;
  manager_.ingress(pkt, config_.key, arrival);
}

}  // namespace nfv::traffic
