#include "traffic/udp_source.hpp"

#include <algorithm>
#include <cassert>

namespace nfv::traffic {

UdpSource::UdpSource(sim::Engine& engine, mgr::Manager& manager,
                     pktio::MbufPool& pool, const CpuClock& clock,
                     Config config)
    : engine_(engine),
      manager_(manager),
      pool_(pool),
      config_(config),
      rng_(config.seed ^ config.key.src_ip) {
  assert(config_.rate_pps > 0.0);
  interval_ = std::max<Cycles>(1, clock.from_seconds(1.0 / config_.rate_pps));
}

void UdpSource::start() {
  const Cycles first = std::max(config_.start_time, engine_.now());
  engine_.schedule_at(first, [this] { emit(); });
}

void UdpSource::emit() {
  if (config_.stop_time >= 0 && engine_.now() >= config_.stop_time) return;

  pktio::Mbuf* pkt = pool_.alloc();
  if (pkt == nullptr) {
    ++alloc_drops_;
  } else {
    pkt->size_bytes = config_.size_bytes;
    pkt->is_tcp = false;
    pkt->seq = sent_;
    if (config_.cost_classes > 0) {
      pkt->cost_class = next_class_;
      next_class_ = static_cast<std::uint8_t>((next_class_ + 1) %
                                              config_.cost_classes);
    }
    ++sent_;
    manager_.ingress(pkt, config_.key);
  }
  // Zero-mean uniform jitter keeps the long-run rate exact while breaking
  // inter-flow phase locking; Poisson mode draws exponential gaps instead.
  Cycles gap = interval_;
  if (config_.poisson) {
    gap = static_cast<Cycles>(
        rng_.next_exponential(static_cast<double>(interval_)));
  } else if (config_.jitter_fraction > 0.0) {
    const double u = 2.0 * rng_.next_double() - 1.0;  // [-1, 1)
    gap += static_cast<Cycles>(u * config_.jitter_fraction *
                               static_cast<double>(interval_));
  }
  if (gap < 1) gap = 1;
  engine_.schedule_after(gap, [this] { emit(); });
}

}  // namespace nfv::traffic
