// Packet-trace capture and replay.
//
// Production middlebox evaluations often replay captured traces instead of
// synthetic CBR (the paper's testbed generators support pcap replay). Our
// trace format is a minimal text schema — one packet per line:
//
//   <time_us> <src_ip> <dst_ip> <src_port> <dst_port> <proto> <size_bytes>
//
// TraceWriter records egress or synthetic workloads into that format;
// TraceSource replays a parsed trace into the platform at its original
// timing (optionally time-scaled or looped). Flows referenced by a trace
// must be installed in the flow table beforehand, as with any traffic.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "mgr/manager.hpp"
#include "pktio/flow_key.hpp"
#include "pktio/mempool.hpp"
#include "sim/engine.hpp"

namespace nfv::traffic {

struct TraceRecord {
  double time_us = 0.0;
  pktio::FlowKey key;
  std::uint16_t size_bytes = 64;
};

/// Parse a trace from a stream. Lines starting with '#' and blank lines
/// are skipped. Throws std::runtime_error with a line number on bad input.
std::vector<TraceRecord> read_trace(std::istream& in);

/// Write records in the trace schema (with a header comment).
void write_trace(std::ostream& out, const std::vector<TraceRecord>& records);

class TraceSource {
 public:
  struct Config {
    double time_scale = 1.0;  ///< >1 slows the trace down, <1 speeds it up.
    int loop_count = 1;       ///< Replays of the whole trace (>=1).
    Cycles start_time = 0;
  };

  TraceSource(sim::Engine& engine, mgr::Manager& manager,
              pktio::MbufPool& pool, const CpuClock& clock,
              std::vector<TraceRecord> records)
      : TraceSource(engine, manager, pool, clock, std::move(records),
                    Config{}) {}
  TraceSource(sim::Engine& engine, mgr::Manager& manager,
              pktio::MbufPool& pool, const CpuClock& clock,
              std::vector<TraceRecord> records, Config config);

  /// Schedule the first packet. Call after Manager::start().
  void start();

  [[nodiscard]] std::uint64_t packets_sent() const { return sent_; }
  [[nodiscard]] std::uint64_t alloc_drops() const { return alloc_drops_; }
  [[nodiscard]] bool finished() const { return finished_; }

 private:
  void emit_next();

  sim::Engine& engine_;
  mgr::Manager& manager_;
  pktio::MbufPool& pool_;
  CpuClock clock_;
  std::vector<TraceRecord> records_;
  Config config_;

  std::size_t index_ = 0;
  int loops_left_;
  Cycles loop_base_ = 0;
  std::uint64_t sent_ = 0;
  std::uint64_t alloc_drops_ = 0;
  bool finished_ = false;
};

}  // namespace nfv::traffic
