#include "traffic/churn_source.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace nfv::traffic {

namespace {
/// Flow lengths above this are clamped: one elephant should dominate a
/// scenario, not outlive every simulation we could ever run.
constexpr std::uint64_t kMaxFlowPackets = 10'000'000;
}  // namespace

ChurnSource::ChurnSource(sim::Engine& engine, mgr::Manager& manager,
                         pktio::MbufPool& pool, flow::FlowTable& flows,
                         const CpuClock& clock, Config config)
    : engine_(engine),
      manager_(manager),
      pool_(pool),
      flows_(flows),
      config_(config),
      gap_rng_(config.seed ^ 0x67617073ULL),   // "gaps"
      flow_rng_(config.seed ^ 0x666c6f77ULL) {  // "flow"
  assert(config_.rate_pps > 0.0);
  assert(config_.concurrent_flows > 0);
  assert(config_.pareto_alpha > 0.0);
  assert(config_.pareto_min_packets >= 1.0);
  interval_ = std::max<Cycles>(1, clock.from_seconds(1.0 / config_.rate_pps));
  batch_.reserve(std::max<std::uint32_t>(1, config_.burst));
  active_.resize(config_.concurrent_flows);
}

ChurnSource::~ChurnSource() {
  if (pending_ != sim::kInvalidEventId) engine_.cancel(pending_);
}

void ChurnSource::start() {
  next_time_ = std::max(config_.start_time, engine_.now());
  for (std::uint32_t slot = 0; slot < config_.concurrent_flows; ++slot) {
    spawn_flow(slot, next_time_);
  }
  arm();
}

std::uint64_t ChurnSource::draw_flow_length() {
  // Inverse-CDF Pareto draw: len = x_m / u^(1/alpha), u ~ U(0,1].
  const double u = 1.0 - flow_rng_.next_double();  // (0, 1]
  const double len = config_.pareto_min_packets /
                     std::pow(u, 1.0 / config_.pareto_alpha);
  if (len >= static_cast<double>(kMaxFlowPackets)) return kMaxFlowPackets;
  return std::max<std::uint64_t>(1, static_cast<std::uint64_t>(len));
}

void ChurnSource::spawn_flow(std::uint32_t slot, Cycles now) {
  // Enumerate a fresh, never-reused 5-tuple for every flow birth.
  const std::uint64_t n = flows_created_++;
  ActiveFlow& f = active_[slot];
  f.key.src_ip = config_.src_ip_base + static_cast<std::uint32_t>(n / 60000);
  f.key.src_port = static_cast<std::uint16_t>(1 + n % 60000);
  f.key.dst_ip = config_.dst_ip;
  f.key.dst_port = config_.dst_port;
  f.key.proto = pktio::kProtoUdp;
  f.remaining = draw_flow_length();
  f.seq = 0;
  flows_.install(f.key, config_.chain, now);
}

Cycles ChurnSource::draw_gap() {
  // Zero-mean uniform jitter (±10%) keeps the aggregate rate exact while
  // breaking phase locking with other sources, as in UdpSource.
  const double u = 2.0 * gap_rng_.next_double() - 1.0;  // [-1, 1)
  const Cycles gap =
      interval_ + static_cast<Cycles>(0.1 * u * static_cast<double>(interval_));
  return gap < 1 ? 1 : gap;
}

void ChurnSource::arm() {
  const std::uint32_t k = std::max<std::uint32_t>(1, config_.burst);
  batch_.clear();
  batch_.push_back(next_time_);
  for (std::uint32_t i = 1; i < k; ++i) {
    batch_.push_back(batch_.back() + draw_gap());
  }
  next_time_ = batch_.back() + draw_gap();
  pending_ = engine_.schedule_at(batch_.back(), [this] { emit_batch(); });
}

void ChurnSource::emit_batch() {
  pending_ = sim::kInvalidEventId;
  for (const Cycles t : batch_) {
    if (config_.stop_time >= 0 && t >= config_.stop_time) return;  // halt
    emit_one(t);
  }
  arm();
}

void ChurnSource::emit_one(Cycles arrival) {
  const std::uint32_t slot =
      static_cast<std::uint32_t>(flow_rng_.next_below(active_.size()));
  ActiveFlow& f = active_[slot];
  pktio::Mbuf* pkt = pool_.alloc();
  if (pkt == nullptr) {
    ++alloc_drops_;
  } else {
    pkt->size_bytes = config_.size_bytes;
    pkt->is_tcp = false;
    pkt->seq = f.seq++;
    ++sent_;
    manager_.ingress(pkt, f.key, arrival);
  }
  // The flow completes even when the pool starved its last packet — flow
  // lifetimes must not depend on pool occupancy.
  if (--f.remaining == 0) {
    ++flows_retired_;
    spawn_flow(slot, arrival);
  }
}

}  // namespace nfv::traffic
