// Flow-churn workload generator.
//
// Drives the flow table the way an internet-facing middlebox sees traffic:
// a fixed-size population of concurrent flows, each living for a
// heavy-tailed (Pareto) number of packets — many mice, a few elephants —
// and being replaced by a brand-new 5-tuple when it completes. The source
// installs each new flow's rule itself (the Flow Rule Installer role), so
// a run churns through far more distinct flows than are ever concurrently
// live and the table's install / touch / expire machinery is exercised at
// scale.
//
// Determinism mirrors UdpSource: inter-arrival gaps are pre-drawn at arm
// time from one RNG while flow picking / flow lengths consume a second,
// so the packet sequence (keys, timestamps, flow birth order) is identical
// at any burst setting. Installs and touches are stamped with the packet's
// arrival timestamp, not the delivery time, for the same reason.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "flow/flow_table.hpp"
#include "mgr/manager.hpp"
#include "pktio/flow_key.hpp"
#include "pktio/mempool.hpp"
#include "sim/engine.hpp"

namespace nfv::traffic {

class ChurnSource {
 public:
  struct Config {
    flow::ChainId chain = 0;
    double rate_pps = 1e6;  ///< Aggregate over the whole population.
    std::uint32_t concurrent_flows = 1024;
    std::uint16_t size_bytes = 64;
    Cycles start_time = 0;
    Cycles stop_time = -1;  ///< -1 (max) = run until simulation end.
    /// Flow length in packets ~ Pareto(min_packets, alpha): alpha <= 2
    /// gives the classic mice-and-elephants mix.
    double pareto_alpha = 2.0;
    double pareto_min_packets = 2.0;
    std::uint64_t seed = 0xC0FFEEULL;
    /// Arrivals delivered per timer event (1 = one event per packet).
    std::uint32_t burst = 1;
    /// 5-tuple space for generated flows (src_ip/src_port enumerate).
    std::uint32_t src_ip_base = 0x0b000000;
    std::uint32_t dst_ip = 0x0a800001;
    std::uint16_t dst_port = 80;
  };

  ChurnSource(sim::Engine& engine, mgr::Manager& manager,
              pktio::MbufPool& pool, flow::FlowTable& flows,
              const CpuClock& clock, Config config);
  /// Cancels any pending emit event — a queued callback must never outlive
  /// the source it captured.
  ~ChurnSource();

  ChurnSource(const ChurnSource&) = delete;
  ChurnSource& operator=(const ChurnSource&) = delete;

  /// Install the initial flow population and arm the first arrival. Call
  /// once after Manager::start().
  void start();

  [[nodiscard]] std::uint64_t packets_sent() const { return sent_; }
  [[nodiscard]] std::uint64_t flows_created() const { return flows_created_; }
  [[nodiscard]] std::uint64_t flows_retired() const { return flows_retired_; }
  [[nodiscard]] std::uint64_t alloc_drops() const { return alloc_drops_; }

 private:
  struct ActiveFlow {
    pktio::FlowKey key;
    std::uint64_t remaining = 0;  ///< Packets left before retirement.
    std::uint64_t seq = 0;
  };

  void arm();
  void emit_batch();
  void emit_one(Cycles arrival);
  void spawn_flow(std::uint32_t slot, Cycles now);
  [[nodiscard]] Cycles draw_gap();
  [[nodiscard]] std::uint64_t draw_flow_length();

  sim::Engine& engine_;
  mgr::Manager& manager_;
  pktio::MbufPool& pool_;
  flow::FlowTable& flows_;
  Config config_;
  Cycles interval_;
  /// Gap RNG is consumed only at arm time, flow RNG only at emit time, so
  /// neither sequence shifts with the burst setting.
  Rng gap_rng_;
  Rng flow_rng_;
  std::vector<ActiveFlow> active_;
  std::vector<Cycles> batch_;
  Cycles next_time_ = 0;
  sim::EventId pending_ = sim::kInvalidEventId;
  std::uint64_t sent_ = 0;
  std::uint64_t flows_created_ = 0;
  std::uint64_t flows_retired_ = 0;
  std::uint64_t alloc_drops_ = 0;
};

}  // namespace nfv::traffic
