#include "traffic/trace.hpp"

#include <algorithm>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace nfv::traffic {

std::vector<TraceRecord> read_trace(std::istream& in) {
  std::vector<TraceRecord> records;
  std::string line;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const auto first = line.find_first_not_of(" \t");
    if (first == std::string::npos || line[first] == '#') continue;
    std::istringstream iss(line);
    TraceRecord rec;
    unsigned src_port = 0, dst_port = 0, proto = 0, size = 0;
    std::uint32_t src_ip = 0, dst_ip = 0;
    if (!(iss >> rec.time_us >> src_ip >> dst_ip >> src_port >> dst_port >>
          proto >> size)) {
      throw std::runtime_error("trace line " + std::to_string(line_no) +
                               ": expected 7 fields");
    }
    rec.key = pktio::FlowKey{src_ip, dst_ip, static_cast<std::uint16_t>(src_port),
                             static_cast<std::uint16_t>(dst_port),
                             static_cast<std::uint8_t>(proto)};
    rec.size_bytes = static_cast<std::uint16_t>(size);
    records.push_back(rec);
  }
  // Replay requires nondecreasing timestamps.
  if (!std::is_sorted(records.begin(), records.end(),
                      [](const TraceRecord& a, const TraceRecord& b) {
                        return a.time_us < b.time_us;
                      })) {
    throw std::runtime_error("trace timestamps must be nondecreasing");
  }
  return records;
}

void write_trace(std::ostream& out, const std::vector<TraceRecord>& records) {
  out << "# time_us src_ip dst_ip src_port dst_port proto size_bytes\n";
  for (const TraceRecord& rec : records) {
    out << rec.time_us << ' ' << rec.key.src_ip << ' ' << rec.key.dst_ip << ' '
        << rec.key.src_port << ' ' << rec.key.dst_port << ' '
        << static_cast<unsigned>(rec.key.proto) << ' ' << rec.size_bytes
        << '\n';
  }
}

TraceSource::TraceSource(sim::Engine& engine, mgr::Manager& manager,
                         pktio::MbufPool& pool, const CpuClock& clock,
                         std::vector<TraceRecord> records, Config config)
    : engine_(engine),
      manager_(manager),
      pool_(pool),
      clock_(clock),
      records_(std::move(records)),
      config_(config),
      loops_left_(std::max(1, config.loop_count)) {}

void TraceSource::start() {
  if (records_.empty()) {
    finished_ = true;
    return;
  }
  loop_base_ = std::max(config_.start_time, engine_.now());
  const Cycles first = loop_base_ + clock_.from_micros(records_[0].time_us *
                                                       config_.time_scale);
  engine_.schedule_at(first, [this] { emit_next(); });
}

void TraceSource::emit_next() {
  const TraceRecord& rec = records_[index_];
  pktio::Mbuf* pkt = pool_.alloc();
  if (pkt == nullptr) {
    ++alloc_drops_;
  } else {
    pkt->size_bytes = rec.size_bytes;
    pkt->is_tcp = rec.key.proto == pktio::kProtoTcp;
    pkt->seq = sent_;
    ++sent_;
    manager_.ingress(pkt, rec.key);
  }

  ++index_;
  if (index_ >= records_.size()) {
    index_ = 0;
    if (--loops_left_ <= 0) {
      finished_ = true;
      return;
    }
    // Next loop starts after the full trace duration has elapsed.
    loop_base_ += clock_.from_micros(records_.back().time_us *
                                     config_.time_scale);
  }
  const Cycles next = loop_base_ + clock_.from_micros(records_[index_].time_us *
                                                      config_.time_scale);
  engine_.schedule_at(std::max(next, engine_.now()), [this] { emit_next(); });
}

}  // namespace nfv::traffic
