// Packet buffers and the shared memory pool.
//
// Mirrors the DPDK mbuf/mempool design OpenNetVM builds on: packets live in
// one pool shared by the whole platform and only descriptors (pointers) move
// between NIC queues and NF rings — zero-copy (§3.1). The metadata fields
// carry exactly what NFVnice needs: flow/chain identity for backpressure,
// timestamps for queuing-time thresholds and latency accounting, and ECN
// bits for the congestion-marking path.
#pragma once

#include <cstdint>

#include "common/time.hpp"
#include "pktio/flow_key.hpp"

namespace nfv::pktio {

/// Identifies the per-packet processing-cost class when an NF has variable
/// per-packet costs (§4.3.1 uses three classes: 120/270/550 cycles).
using CostClass = std::uint8_t;

struct Mbuf {
  std::uint32_t pool_index = 0;   ///< Slot in the owning pool; never changes.
  std::uint32_t flow_id = 0;      ///< Dense id assigned by the flow table.
  std::uint32_t chain_id = 0;     ///< Service chain this packet traverses.
  std::uint16_t chain_pos = 0;    ///< Index of the next NF in the chain.
  std::uint16_t size_bytes = 64;  ///< Wire size; throughput in bps uses this.

  Cycles arrival_time = 0;   ///< When the packet entered the platform.
  Cycles enqueue_time = 0;   ///< When it was enqueued to the current ring.

  bool is_tcp = false;
  bool ecn_capable = false;
  bool ecn_marked = false;
  CostClass cost_class = 0;
  /// NUMA node whose memory currently holds the packet data (buffers are
  /// written where the producer ran; a consumer on another socket pays a
  /// remote-access penalty on first touch).
  std::int8_t numa_node = 0;

  std::uint64_t seq = 0;  ///< Monotone per-flow sequence, for TCP accounting.

  /// Scratch byte an NF's cost probe may leave for its packet handler
  /// (e.g. a firewall verdict computed at burst-assembly time). Valid only
  /// between one NF's probe and its handler for the same packet.
  std::uint8_t nf_scratch = 0;

  /// Parsed 5-tuple "headers". Real NFs (firewall, NAT, DPI, ...) read and
  /// may rewrite these, exactly as they would rewrite packet headers.
  FlowKey key;
};

}  // namespace nfv::pktio
