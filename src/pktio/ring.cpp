#include "pktio/ring.hpp"

#include <algorithm>
#include <bit>
#include <cmath>

namespace nfv::pktio {

Ring::Ring(std::uint32_t capacity, double high_watermark, double low_watermark) {
  capacity_ = std::bit_ceil(std::max<std::uint32_t>(capacity, 2));
  mask_ = capacity_ - 1;
  slots_.assign(capacity_, nullptr);
  high_watermark = std::clamp(high_watermark, 0.0, 1.0);
  low_watermark = std::clamp(low_watermark, 0.0, high_watermark);
  high_mark_ = std::max<std::size_t>(
      1, static_cast<std::size_t>(std::lround(high_watermark *
                                              static_cast<double>(capacity_))));
  low_mark_ = static_cast<std::size_t>(
      std::lround(low_watermark * static_cast<double>(capacity_)));
}

EnqueueResult Ring::enqueue(Mbuf* mbuf) {
  if (count_ == capacity_) return EnqueueResult::kFull;
  slots_[tail_] = mbuf;
  tail_ = (tail_ + 1) & mask_;
  ++count_;
  ++total_enqueued_;
  return count_ >= high_mark_ ? EnqueueResult::kOkOverloaded : EnqueueResult::kOk;
}

std::size_t Ring::enqueue_burst(Mbuf* const* in, std::size_t n) {
  const std::size_t accepted = std::min(n, capacity_ - count_);
  for (std::size_t i = 0; i < accepted; ++i) {
    slots_[tail_] = in[i];
    tail_ = (tail_ + 1) & mask_;
  }
  count_ += accepted;
  total_enqueued_ += accepted;
  return accepted;
}

Mbuf* Ring::dequeue() {
  if (count_ == 0) return nullptr;
  Mbuf* mbuf = slots_[head_];
  head_ = (head_ + 1) & mask_;
  --count_;
  ++total_dequeued_;
  return mbuf;
}

std::size_t Ring::dequeue_burst(Mbuf** out, std::size_t max) {
  const std::size_t n = std::min(max, count_);
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = slots_[head_];
    head_ = (head_ + 1) & mask_;
  }
  count_ -= n;
  total_dequeued_ += n;
  return n;
}

Cycles Ring::head_enqueue_time() const {
  if (count_ == 0) return 0;
  return slots_[head_]->enqueue_time;
}

}  // namespace nfv::pktio
