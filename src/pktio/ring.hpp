// Bounded descriptor ring with watermark feedback (rte_ring stand-in).
//
// NFVnice's overload detection rides on the enqueue path: "Using a single
// DPDK enqueue interface, the Tx thread enqueues a packet to an NF's Rx
// queue if the queue is below the high watermark, while getting feedback
// about the queue's state in the return value" (§3.5). Enqueue here returns
// that same tri-state. Watermarks are fractions of capacity; §4.3.8 tunes
// them to HIGH=80% with a margin of 20 points (LOW=60%).
#pragma once

#include <atomic>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "pktio/mbuf.hpp"

namespace nfv::pktio {

enum class EnqueueResult {
  kOk,             ///< Enqueued; queue below high watermark.
  kOkOverloaded,   ///< Enqueued; queue length is at/above the high watermark.
  kFull,           ///< Ring full; caller must drop or retry.
};

class Ring {
 public:
  /// `capacity` is rounded up to a power of two (minimum 2), matching
  /// rte_ring semantics. Watermarks are fractions of the rounded capacity.
  explicit Ring(std::uint32_t capacity, double high_watermark = 0.80,
                double low_watermark = 0.60);

  Ring(const Ring&) = delete;
  Ring& operator=(const Ring&) = delete;

  EnqueueResult enqueue(Mbuf* mbuf);

  /// Enqueue up to `n` descriptors from `in`; returns the number accepted
  /// (fewer than `n` when the ring fills mid-burst, matching DPDK's
  /// variable-count rte_ring_enqueue_burst). Watermark feedback is read
  /// separately via above_high_watermark().
  std::size_t enqueue_burst(Mbuf* const* in, std::size_t n);

  /// Dequeue one descriptor; nullptr when empty.
  Mbuf* dequeue();

  /// Dequeue up to `max` descriptors into `out`; returns count.
  std::size_t dequeue_burst(Mbuf** out, std::size_t max);

  [[nodiscard]] std::size_t size() const { return count_; }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  [[nodiscard]] bool empty() const { return count_ == 0; }
  [[nodiscard]] bool full() const { return count_ == capacity_; }

  [[nodiscard]] std::size_t high_watermark() const { return high_mark_; }
  [[nodiscard]] std::size_t low_watermark() const { return low_mark_; }
  [[nodiscard]] bool above_high_watermark() const { return count_ >= high_mark_; }
  [[nodiscard]] bool below_low_watermark() const { return count_ < low_mark_; }

  /// Oldest enqueue_time in the ring (for the queuing-time threshold in the
  /// backpressure state machine); 0 when empty.
  [[nodiscard]] Cycles head_enqueue_time() const;

  std::uint64_t total_enqueued() const { return total_enqueued_; }
  std::uint64_t total_dequeued() const { return total_dequeued_; }

 private:
  std::size_t capacity_;
  std::size_t mask_;
  std::size_t high_mark_;
  std::size_t low_mark_;
  std::vector<Mbuf*> slots_;
  std::size_t head_ = 0;  // next dequeue position
  std::size_t tail_ = 0;  // next enqueue position
  std::size_t count_ = 0;
  std::uint64_t total_enqueued_ = 0;
  std::uint64_t total_dequeued_ = 0;
};

/// Single-producer/single-consumer ring for cross-shard handoff (the
/// rte_ring SP/SC fast path). One thread calls try_push, one thread calls
/// try_pop; the release store on the producer index paired with the acquire
/// load on the consumer side publishes each slot's contents, so no other
/// synchronization is needed for the payload itself. Used by the sharded
/// engine as the only data channel between event lanes — the modelled
/// ring-transit latency of messages travelling through it is what bounds
/// each lane's conservative lookahead.
template <typename T>
class SpscRing {
 public:
  /// `capacity` is rounded up to a power of two (minimum 2).
  explicit SpscRing(std::uint32_t capacity) {
    std::size_t cap = 2;
    while (cap < capacity) cap <<= 1;
    slots_.resize(cap);
    mask_ = cap - 1;
  }

  SpscRing(const SpscRing&) = delete;
  SpscRing& operator=(const SpscRing&) = delete;

  /// Producer side. Returns false when the ring is full.
  bool try_push(const T& value) {
    const std::uint64_t tail = tail_.load(std::memory_order_relaxed);
    if (tail - head_.load(std::memory_order_acquire) > mask_) return false;
    slots_[tail & mask_] = value;
    tail_.store(tail + 1, std::memory_order_release);
    return true;
  }

  /// Consumer side. Returns false when the ring is empty.
  bool try_pop(T& out) {
    const std::uint64_t head = head_.load(std::memory_order_relaxed);
    if (head == tail_.load(std::memory_order_acquire)) return false;
    out = slots_[head & mask_];
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

  [[nodiscard]] std::size_t capacity() const { return mask_ + 1; }

  /// Racy size estimate; exact when producer and consumer are quiescent.
  [[nodiscard]] std::size_t size_approx() const {
    return static_cast<std::size_t>(tail_.load(std::memory_order_acquire) -
                                    head_.load(std::memory_order_acquire));
  }

 private:
  std::uint64_t mask_ = 1;
  std::vector<T> slots_;
  alignas(64) std::atomic<std::uint64_t> head_{0};  ///< next pop position
  alignas(64) std::atomic<std::uint64_t> tail_{0};  ///< next push position
};

}  // namespace nfv::pktio
