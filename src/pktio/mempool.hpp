// Fixed-capacity mbuf pool (DPDK rte_mempool stand-in).
#pragma once

#include <cstdint>
#include <vector>

#include "pktio/mbuf.hpp"

namespace nfv::pktio {

class MbufPool {
 public:
  explicit MbufPool(std::uint32_t capacity);

  MbufPool(const MbufPool&) = delete;
  MbufPool& operator=(const MbufPool&) = delete;

  /// Allocate one mbuf; returns nullptr when the pool is exhausted (the
  /// generator then counts a wire drop, as a NIC would under mbuf pressure).
  Mbuf* alloc();

  /// Allocate `n` mbufs into `out`, all-or-nothing (DPDK
  /// rte_pktmbuf_alloc_bulk semantics): returns `n` on success, 0 — with
  /// `out` untouched and one alloc failure counted — when fewer than `n`
  /// buffers are free.
  std::uint32_t alloc_burst(Mbuf** out, std::uint32_t n);

  /// Return an mbuf to the pool. The mbuf must have come from this pool and
  /// must not be referenced afterwards. Debug builds assert on double free
  /// (a release-build double free silently corrupts the free list: the slot
  /// gets handed out twice and two owners scribble over each other).
  void free(Mbuf* mbuf);

  /// Return `n` mbufs; equivalent to calling free() on each in order.
  void free_burst(Mbuf* const* mbufs, std::uint32_t n);

  [[nodiscard]] std::uint32_t capacity() const { return capacity_; }
  [[nodiscard]] std::uint32_t in_use() const {
    return capacity_ - static_cast<std::uint32_t>(free_list_.size());
  }
  [[nodiscard]] std::uint64_t alloc_failures() const { return alloc_failures_; }

 private:
  std::uint32_t capacity_;
  std::vector<Mbuf> slots_;
  std::vector<std::uint32_t> free_list_;
  std::uint64_t alloc_failures_ = 0;
#ifndef NDEBUG
  std::vector<bool> is_free_;  ///< Debug-only double-free detector.
#endif
};

}  // namespace nfv::pktio
