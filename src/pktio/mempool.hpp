// Fixed-capacity mbuf pool (DPDK rte_mempool stand-in).
#pragma once

#include <cstdint>
#include <vector>

#include "pktio/mbuf.hpp"

namespace nfv::pktio {

class MbufPool {
 public:
  explicit MbufPool(std::uint32_t capacity);

  MbufPool(const MbufPool&) = delete;
  MbufPool& operator=(const MbufPool&) = delete;

  /// Allocate one mbuf; returns nullptr when the pool is exhausted (the
  /// generator then counts a wire drop, as a NIC would under mbuf pressure).
  Mbuf* alloc();

  /// Return an mbuf to the pool. The mbuf must have come from this pool and
  /// must not be referenced afterwards.
  void free(Mbuf* mbuf);

  [[nodiscard]] std::uint32_t capacity() const { return capacity_; }
  [[nodiscard]] std::uint32_t in_use() const {
    return capacity_ - static_cast<std::uint32_t>(free_list_.size());
  }
  [[nodiscard]] std::uint64_t alloc_failures() const { return alloc_failures_; }

 private:
  std::uint32_t capacity_;
  std::vector<Mbuf> slots_;
  std::vector<std::uint32_t> free_list_;
  std::uint64_t alloc_failures_ = 0;
};

}  // namespace nfv::pktio
