// 5-tuple flow identity and hashing.
//
// The NF Manager's Rx threads look packets up in a flow table keyed by the
// classic 5-tuple to find the service chain for the packet (§3.1). Hashing
// follows the FNV-1a construction over the packed tuple.
#pragma once

#include <cstdint>
#include <functional>

namespace nfv::pktio {

struct FlowKey {
  std::uint32_t src_ip = 0;
  std::uint32_t dst_ip = 0;
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint8_t proto = 0;  ///< IPPROTO_UDP=17, IPPROTO_TCP=6.

  friend bool operator==(const FlowKey&, const FlowKey&) = default;
};

inline constexpr std::uint8_t kProtoTcp = 6;
inline constexpr std::uint8_t kProtoUdp = 17;

struct FlowKeyHash {
  std::size_t operator()(const FlowKey& key) const {
    std::uint64_t hash = 0xcbf29ce484222325ULL;  // FNV-1a 64-bit offset basis
    auto mix = [&hash](std::uint64_t value, int bytes) {
      for (int i = 0; i < bytes; ++i) {
        hash ^= (value >> (8 * i)) & 0xff;
        hash *= 0x100000001b3ULL;
      }
    };
    mix(key.src_ip, 4);
    mix(key.dst_ip, 4);
    mix(key.src_port, 2);
    mix(key.dst_port, 2);
    mix(key.proto, 1);
    return static_cast<std::size_t>(hash);
  }
};

}  // namespace nfv::pktio
