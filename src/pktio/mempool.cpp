#include "pktio/mempool.hpp"

#include <cassert>

namespace nfv::pktio {

MbufPool::MbufPool(std::uint32_t capacity) : capacity_(capacity) {
  slots_.resize(capacity);
  free_list_.reserve(capacity);
  // Hand out low indices first: iterate in reverse so index 0 is on top.
  for (std::uint32_t i = capacity; i-- > 0;) {
    slots_[i].pool_index = i;
    free_list_.push_back(i);
  }
}

Mbuf* MbufPool::alloc() {
  if (free_list_.empty()) {
    ++alloc_failures_;
    return nullptr;
  }
  const std::uint32_t index = free_list_.back();
  free_list_.pop_back();
  Mbuf& mbuf = slots_[index];
  // Reset metadata but keep the identity field.
  mbuf = Mbuf{};
  mbuf.pool_index = index;
  return &mbuf;
}

void MbufPool::free(Mbuf* mbuf) {
  assert(mbuf != nullptr);
  assert(mbuf >= slots_.data() && mbuf < slots_.data() + capacity_ &&
         "mbuf does not belong to this pool");
  free_list_.push_back(mbuf->pool_index);
}

}  // namespace nfv::pktio
