#include "pktio/mempool.hpp"

#include <cassert>

namespace nfv::pktio {

MbufPool::MbufPool(std::uint32_t capacity) : capacity_(capacity) {
  slots_.resize(capacity);
  free_list_.reserve(capacity);
  // Hand out low indices first: iterate in reverse so index 0 is on top.
  for (std::uint32_t i = capacity; i-- > 0;) {
    slots_[i].pool_index = i;
    free_list_.push_back(i);
  }
#ifndef NDEBUG
  is_free_.assign(capacity, true);
#endif
}

Mbuf* MbufPool::alloc() {
  if (free_list_.empty()) {
    ++alloc_failures_;
    return nullptr;
  }
  const std::uint32_t index = free_list_.back();
  free_list_.pop_back();
#ifndef NDEBUG
  is_free_[index] = false;
#endif
  Mbuf& mbuf = slots_[index];
  // Reset metadata but keep the identity field.
  mbuf = Mbuf{};
  mbuf.pool_index = index;
  return &mbuf;
}

std::uint32_t MbufPool::alloc_burst(Mbuf** out, std::uint32_t n) {
  if (free_list_.size() < n) {
    ++alloc_failures_;
    return 0;
  }
  for (std::uint32_t i = 0; i < n; ++i) out[i] = alloc();
  return n;
}

void MbufPool::free(Mbuf* mbuf) {
  assert(mbuf != nullptr);
  assert(mbuf >= slots_.data() && mbuf < slots_.data() + capacity_ &&
         "mbuf does not belong to this pool");
  assert(mbuf == &slots_[mbuf->pool_index] && "corrupted pool_index");
#ifndef NDEBUG
  assert(!is_free_[mbuf->pool_index] && "double free of mbuf");
  is_free_[mbuf->pool_index] = true;
#endif
  free_list_.push_back(mbuf->pool_index);
}

void MbufPool::free_burst(Mbuf* const* mbufs, std::uint32_t n) {
  for (std::uint32_t i = 0; i < n; ++i) free(mbufs[i]);
}

}  // namespace nfv::pktio
