// Token-bucket rate-limiter NF.
//
// Polices traffic to a configured rate with a burst allowance — the
// classic traffic-conditioning middlebox. Tokens refill continuously with
// simulated time; packets that find an empty bucket are dropped by the
// NF's own verdict (distinct from queue drops, which the platform counts
// separately).
#pragma once

#include <algorithm>
#include <cstdint>

#include "nf/nf_task.hpp"
#include "sim/engine.hpp"

namespace nfv::nfs {

class RateLimiter {
 public:
  struct Config {
    double rate_pps = 1e6;          ///< Sustained packets per second.
    double burst_packets = 64.0;    ///< Bucket depth.
  };

  RateLimiter(sim::Engine& engine, const CpuClock& clock, Config config)
      : engine_(engine),
        tokens_per_cycle_(config.rate_pps / clock.hz()),
        burst_(config.burst_packets),
        tokens_(config.burst_packets),
        last_refill_(engine.now()) {}

  /// True if the packet conforms (consumes a token); false => police it.
  bool admit() {
    refill();
    if (tokens_ >= 1.0) {
      tokens_ -= 1.0;
      ++conformed_;
      return true;
    }
    ++policed_;
    return false;
  }

  void install(nf::NfTask& task) {
    task.set_handler([this](pktio::Mbuf&) {
      return admit() ? nf::NfAction::kForward : nf::NfAction::kDrop;
    });
  }

  [[nodiscard]] std::uint64_t conformed() const { return conformed_; }
  [[nodiscard]] std::uint64_t policed() const { return policed_; }
  [[nodiscard]] double tokens() {
    refill();
    return tokens_;
  }

 private:
  void refill() {
    const Cycles now = engine_.now();
    tokens_ = std::min(
        burst_, tokens_ + static_cast<double>(now - last_refill_) *
                              tokens_per_cycle_);
    last_refill_ = now;
  }

  sim::Engine& engine_;
  double tokens_per_cycle_;
  double burst_;
  double tokens_;
  Cycles last_refill_;
  std::uint64_t conformed_ = 0;
  std::uint64_t policed_ = 0;
};

}  // namespace nfv::nfs
