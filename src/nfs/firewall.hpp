// Stateful-cached firewall NF.
//
// One of the canonical middleboxes NFV replaces (§1). Evaluates an ordered
// rule list against each packet's 5-tuple; first match wins; unmatched
// packets take the default policy. Wildcards are expressed as masks (0 =
// don't care), as in classic 5-tuple ACLs.
//
// A per-flow verdict cache (FlowStore) fronts the rule scan when the
// firewall is installed with path costs: a connection's first packet pays
// the full linear rule walk, later packets pay one table probe — which is
// how real ACL engines amortise deep rule lists, and why the per-packet
// cost now depends on flow-table state. The cache stores the *matched rule
// index* (not the verdict alone) so per-rule hit counters stay exact on
// cached packets; adding a rule flushes the cache, since a cached default
// verdict might now match it.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "flow/flow_store.hpp"
#include "nf/nf_task.hpp"
#include "pktio/flow_key.hpp"

namespace nfv::nfs {

enum class Verdict { kAllow, kDeny };

struct FirewallRule {
  std::string name;
  // Zero-valued fields are wildcards.
  std::uint32_t src_ip = 0;
  std::uint32_t src_mask = 0;
  std::uint32_t dst_ip = 0;
  std::uint32_t dst_mask = 0;
  std::uint16_t src_port = 0;  ///< 0 = any
  std::uint16_t dst_port = 0;  ///< 0 = any
  std::uint8_t proto = 0;      ///< 0 = any
  Verdict verdict = Verdict::kAllow;

  std::uint64_t hits = 0;

  [[nodiscard]] bool matches(const pktio::FlowKey& key) const {
    if ((key.src_ip & src_mask) != (src_ip & src_mask)) return false;
    if ((key.dst_ip & dst_mask) != (dst_ip & dst_mask)) return false;
    if (src_port != 0 && key.src_port != src_port) return false;
    if (dst_port != 0 && key.dst_port != dst_port) return false;
    if (proto != 0 && key.proto != proto) return false;
    return true;
  }
};

class Firewall {
 public:
  /// Per-packet cost by verdict-cache path (cycles): a cached flow costs a
  /// probe; a new flow costs the rule walk; an eviction adds displacing the
  /// coldest cached flow.
  struct PathCosts {
    Cycles hit = 180;
    Cycles miss = 700;
    Cycles evict = 1000;
  };

  explicit Firewall(Verdict default_policy = Verdict::kAllow,
                    std::uint32_t cache_flows = 1u << 16)
      : default_policy_(default_policy),
        cache_(flow::FlowStore<pktio::FlowKey, std::int32_t>::Config{
            .max_flows = cache_flows,
            .idle_timeout = 0,
            .evict_lru_when_full = true,
            .auto_grow = false}) {}

  /// Append a rule (evaluated in insertion order). Flushes the verdict
  /// cache: flows cached on the default policy might now match this rule.
  FirewallRule& add_rule(FirewallRule rule) {
    rules_.push_back(std::move(rule));
    cache_.clear();
    return rules_.back();
  }

  /// Evaluate a packet via the full rule walk; updates rule hit counters.
  Verdict evaluate(const pktio::FlowKey& key) {
    for (auto& rule : rules_) {
      if (rule.matches(key)) {
        ++rule.hits;
        return rule.verdict;
      }
    }
    ++default_hits_;
    return default_policy_;
  }

  /// Evaluate through the verdict cache, reporting which path was taken.
  /// Per-rule / default hit counters advance exactly as evaluate() would.
  struct CachedVerdict {
    Verdict verdict;
    flow::StorePath path;
  };
  CachedVerdict evaluate_cached(const pktio::FlowKey& key) {
    const auto result = cache_.install(key, static_cast<Cycles>(++tick_));
    std::int32_t& rule_index = cache_.state(result.index);
    if (result.path == flow::StorePath::kHit) {
      if (rule_index >= 0) {
        auto& rule = rules_[static_cast<std::size_t>(rule_index)];
        ++rule.hits;
        return {rule.verdict, result.path};
      }
      ++default_hits_;
      return {default_policy_, result.path};
    }
    for (std::size_t i = 0; i < rules_.size(); ++i) {
      if (rules_[i].matches(key)) {
        ++rules_[i].hits;
        rule_index = static_cast<std::int32_t>(i);
        return {rules_[i].verdict, result.path};
      }
    }
    ++default_hits_;
    rule_index = -1;
    return {default_policy_, result.path};
  }

  /// Install as the packet handler of `task`. The Firewall must outlive it.
  void install(nf::NfTask& task) {
    task.set_handler([this](pktio::Mbuf& pkt) {
      const Verdict verdict = evaluate(pkt.key);
      if (verdict == Verdict::kDeny) {
        ++denied_;
        return nf::NfAction::kDrop;
      }
      ++allowed_;
      return nf::NfAction::kForward;
    });
  }

  /// State-dependent install: the cost probe runs the cached evaluation at
  /// burst-assembly time (dequeue order — burst-window invariant), charges
  /// the path cost, and leaves the verdict in pkt.nf_scratch for the
  /// handler to act on.
  void install(nf::NfTask& task, PathCosts costs) {
    task.cost_model() = nf::CostModel::state_dependent(
        [this, costs](pktio::Mbuf& pkt) {
          const CachedVerdict cached = evaluate_cached(pkt.key);
          pkt.nf_scratch = cached.verdict == Verdict::kDeny ? 1 : 0;
          switch (cached.path) {
            case flow::StorePath::kHit:
              return costs.hit;
            case flow::StorePath::kEvicted:
              return costs.evict;
            default:
              return costs.miss;
          }
        },
        costs.hit);
    task.set_handler([this](pktio::Mbuf& pkt) {
      if (pkt.nf_scratch != 0) {
        ++denied_;
        return nf::NfAction::kDrop;
      }
      ++allowed_;
      return nf::NfAction::kForward;
    });
  }

  [[nodiscard]] const std::vector<FirewallRule>& rules() const { return rules_; }
  [[nodiscard]] std::uint64_t allowed() const { return allowed_; }
  [[nodiscard]] std::uint64_t denied() const { return denied_; }
  [[nodiscard]] std::uint64_t default_hits() const { return default_hits_; }
  [[nodiscard]] std::size_t cached_flows() const { return cache_.size(); }

 private:
  Verdict default_policy_;
  std::vector<FirewallRule> rules_;
  /// Per-flow cache: index of the matching rule, -1 = default policy.
  flow::FlowStore<pktio::FlowKey, std::int32_t> cache_;
  std::uint64_t tick_ = 0;
  std::uint64_t allowed_ = 0;
  std::uint64_t denied_ = 0;
  std::uint64_t default_hits_ = 0;
};

}  // namespace nfv::nfs
