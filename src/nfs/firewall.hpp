// Stateless firewall NF.
//
// One of the canonical middleboxes NFV replaces (§1). Evaluates an ordered
// rule list against each packet's 5-tuple; first match wins; unmatched
// packets take the default policy. Wildcards are expressed as masks (0 =
// don't care), as in classic 5-tuple ACLs.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "nf/nf_task.hpp"
#include "pktio/flow_key.hpp"

namespace nfv::nfs {

enum class Verdict { kAllow, kDeny };

struct FirewallRule {
  std::string name;
  // Zero-valued fields are wildcards.
  std::uint32_t src_ip = 0;
  std::uint32_t src_mask = 0;
  std::uint32_t dst_ip = 0;
  std::uint32_t dst_mask = 0;
  std::uint16_t src_port = 0;  ///< 0 = any
  std::uint16_t dst_port = 0;  ///< 0 = any
  std::uint8_t proto = 0;      ///< 0 = any
  Verdict verdict = Verdict::kAllow;

  std::uint64_t hits = 0;

  [[nodiscard]] bool matches(const pktio::FlowKey& key) const {
    if ((key.src_ip & src_mask) != (src_ip & src_mask)) return false;
    if ((key.dst_ip & dst_mask) != (dst_ip & dst_mask)) return false;
    if (src_port != 0 && key.src_port != src_port) return false;
    if (dst_port != 0 && key.dst_port != dst_port) return false;
    if (proto != 0 && key.proto != proto) return false;
    return true;
  }
};

class Firewall {
 public:
  explicit Firewall(Verdict default_policy = Verdict::kAllow)
      : default_policy_(default_policy) {}

  /// Append a rule (evaluated in insertion order).
  FirewallRule& add_rule(FirewallRule rule) {
    rules_.push_back(std::move(rule));
    return rules_.back();
  }

  /// Evaluate a packet; updates rule hit counters.
  Verdict evaluate(const pktio::FlowKey& key) {
    for (auto& rule : rules_) {
      if (rule.matches(key)) {
        ++rule.hits;
        return rule.verdict;
      }
    }
    ++default_hits_;
    return default_policy_;
  }

  /// Install as the packet handler of `task`. The Firewall must outlive it.
  void install(nf::NfTask& task) {
    task.set_handler([this](pktio::Mbuf& pkt) {
      const Verdict verdict = evaluate(pkt.key);
      if (verdict == Verdict::kDeny) {
        ++denied_;
        return nf::NfAction::kDrop;
      }
      ++allowed_;
      return nf::NfAction::kForward;
    });
  }

  [[nodiscard]] const std::vector<FirewallRule>& rules() const { return rules_; }
  [[nodiscard]] std::uint64_t allowed() const { return allowed_; }
  [[nodiscard]] std::uint64_t denied() const { return denied_; }
  [[nodiscard]] std::uint64_t default_hits() const { return default_hits_; }

 private:
  Verdict default_policy_;
  std::vector<FirewallRule> rules_;
  std::uint64_t allowed_ = 0;
  std::uint64_t denied_ = 0;
  std::uint64_t default_hits_ = 0;
};

}  // namespace nfv::nfs
