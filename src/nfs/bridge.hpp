// Learning-bridge NF.
//
// §3.1: "a simple bridge NF ... is less than 100 lines of C code". Learns
// which "port" each source address lives behind and forwards accordingly;
// unknown destinations flood (counted). Ports are synthetic ingress ids —
// the learning/forwarding-table logic is what the NF exercises.
#pragma once

#include <cstdint>
#include <unordered_map>

#include "nf/nf_task.hpp"

namespace nfv::nfs {

class Bridge {
 public:
  /// Learn that `src_ip` was seen on `port`, and look up the output port
  /// for `dst_ip`. Returns the output port, or -1 to flood.
  int forward(std::uint32_t src_ip, std::uint32_t dst_ip, int port) {
    table_[src_ip] = port;
    const auto it = table_.find(dst_ip);
    if (it == table_.end()) {
      ++floods_;
      return -1;
    }
    ++forwards_;
    return it->second;
  }

  void install(nf::NfTask& task, int ingress_port = 0) {
    task.set_handler([this, ingress_port](pktio::Mbuf& pkt) {
      forward(pkt.key.src_ip, pkt.key.dst_ip, ingress_port);
      return nf::NfAction::kForward;
    });
  }

  [[nodiscard]] std::size_t table_size() const { return table_.size(); }
  [[nodiscard]] std::uint64_t forwards() const { return forwards_; }
  [[nodiscard]] std::uint64_t floods() const { return floods_; }

 private:
  std::unordered_map<std::uint32_t, int> table_;
  std::uint64_t forwards_ = 0;
  std::uint64_t floods_ = 0;
};

}  // namespace nfv::nfs
