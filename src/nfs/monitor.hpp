// Flow-monitoring NF (per-flow accounting middlebox).
//
// §3.1 cites "a basic monitor NF" as a canonical small NF. Tracks per-flow
// packet and byte counters keyed by the packet 5-tuple and can report the
// top talkers — the workload of a NetFlow/IPFIX-style probe.
#pragma once

#include <algorithm>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "nf/nf_task.hpp"
#include "pktio/flow_key.hpp"

namespace nfv::nfs {

class FlowMonitor {
 public:
  struct FlowStats {
    std::uint64_t packets = 0;
    std::uint64_t bytes = 0;
  };

  void observe(const pktio::Mbuf& pkt) {
    auto& stats = flows_[pkt.key];
    ++stats.packets;
    stats.bytes += pkt.size_bytes;
    ++total_packets_;
  }

  void install(nf::NfTask& task) {
    task.set_handler([this](pktio::Mbuf& pkt) {
      observe(pkt);
      return nf::NfAction::kForward;
    });
  }

  [[nodiscard]] std::size_t flow_count() const { return flows_.size(); }
  [[nodiscard]] std::uint64_t total_packets() const { return total_packets_; }

  [[nodiscard]] FlowStats stats_for(const pktio::FlowKey& key) const {
    const auto it = flows_.find(key);
    return it == flows_.end() ? FlowStats{} : it->second;
  }

  /// The k flows with the most bytes, descending.
  [[nodiscard]] std::vector<std::pair<pktio::FlowKey, FlowStats>> top_talkers(
      std::size_t k) const {
    std::vector<std::pair<pktio::FlowKey, FlowStats>> all(flows_.begin(),
                                                          flows_.end());
    std::partial_sort(all.begin(), all.begin() + std::min(k, all.size()),
                      all.end(), [](const auto& a, const auto& b) {
                        return a.second.bytes > b.second.bytes;
                      });
    all.resize(std::min(k, all.size()));
    return all;
  }

 private:
  std::unordered_map<pktio::FlowKey, FlowStats, pktio::FlowKeyHash> flows_;
  std::uint64_t total_packets_ = 0;
};

}  // namespace nfv::nfs
