// Flow-monitoring NF (per-flow accounting middlebox).
//
// §3.1 cites "a basic monitor NF" as a canonical small NF. Tracks per-flow
// packet and byte counters keyed by the packet 5-tuple and can report the
// top talkers — the workload of a NetFlow/IPFIX-style probe. The counter
// table is a bounded FlowStore: like a real probe's flow cache, it holds a
// fixed number of records and recycles the least-recently-seen one when a
// new flow arrives over capacity (the displaced record's counts are lost —
// the classic NetFlow cache-overflow artifact).
#pragma once

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

#include "flow/flow_store.hpp"
#include "nf/nf_task.hpp"
#include "pktio/flow_key.hpp"

namespace nfv::nfs {

class FlowMonitor {
 public:
  struct FlowStats {
    std::uint64_t packets = 0;
    std::uint64_t bytes = 0;
  };

  /// Per-packet cost by flow-cache path (cycles): counter bump on a hit,
  /// record allocation on a miss, record recycling on an eviction.
  struct PathCosts {
    Cycles hit = 120;
    Cycles miss = 350;
    Cycles evict = 500;
  };

  FlowMonitor() : FlowMonitor(1u << 16) {}
  explicit FlowMonitor(std::uint32_t max_flows)
      : flows_(flow::FlowStore<pktio::FlowKey, FlowStats>::Config{
            .max_flows = max_flows,
            .idle_timeout = 0,
            .evict_lru_when_full = true,
            .auto_grow = false}) {}

  /// Account one packet, reporting the flow-cache path it took.
  flow::StorePath observe_path(const pktio::Mbuf& pkt) {
    const auto result = flows_.install(pkt.key, static_cast<Cycles>(++tick_));
    FlowStats& stats = flows_.state(result.index);
    ++stats.packets;
    stats.bytes += pkt.size_bytes;
    ++total_packets_;
    return result.path;
  }

  void observe(const pktio::Mbuf& pkt) { observe_path(pkt); }

  void install(nf::NfTask& task) {
    task.set_handler([this](pktio::Mbuf& pkt) {
      observe(pkt);
      return nf::NfAction::kForward;
    });
  }

  /// State-dependent install: accounting happens in the cost probe at
  /// burst-assembly time (dequeue order — burst-window invariant) and the
  /// charged cost follows the flow-cache path.
  void install(nf::NfTask& task, PathCosts costs) {
    task.cost_model() = nf::CostModel::state_dependent(
        [this, costs](pktio::Mbuf& pkt) {
          switch (observe_path(pkt)) {
            case flow::StorePath::kHit:
              return costs.hit;
            case flow::StorePath::kEvicted:
              return costs.evict;
            default:
              return costs.miss;
          }
        },
        costs.hit);
    task.set_handler(
        [](pktio::Mbuf&) { return nf::NfAction::kForward; });
  }

  [[nodiscard]] std::size_t flow_count() const { return flows_.size(); }
  [[nodiscard]] std::uint64_t total_packets() const { return total_packets_; }
  [[nodiscard]] std::uint64_t cache_evictions() const {
    return flows_.lru_evictions();
  }

  [[nodiscard]] FlowStats stats_for(const pktio::FlowKey& key) const {
    const std::uint32_t idx = flows_.peek(key);
    return idx == flow::IndexPool::kNoIndex ? FlowStats{} : flows_.state(idx);
  }

  /// The k flows with the most bytes, descending.
  [[nodiscard]] std::vector<std::pair<pktio::FlowKey, FlowStats>> top_talkers(
      std::size_t k) const {
    std::vector<std::pair<pktio::FlowKey, FlowStats>> all;
    all.reserve(flows_.size());
    flows_.for_each([&](std::uint32_t, const pktio::FlowKey& key,
                        const FlowStats& stats) { all.emplace_back(key, stats); });
    std::partial_sort(all.begin(), all.begin() + std::min(k, all.size()),
                      all.end(), [](const auto& a, const auto& b) {
                        return a.second.bytes > b.second.bytes;
                      });
    all.resize(std::min(k, all.size()));
    return all;
  }

 private:
  flow::FlowStore<pktio::FlowKey, FlowStats> flows_;
  std::uint64_t tick_ = 0;
  std::uint64_t total_packets_ = 0;
};

}  // namespace nfv::nfs
