// L4 load-balancer NF.
//
// Spreads connections over a backend pool. Two policies: flow-hash
// (consistent for a connection — what an L4 LB must guarantee) and
// round-robin per packet (for comparison in tests). Rewrites the packet's
// destination to the chosen backend.
#pragma once

#include <cstdint>
#include <vector>

#include "nf/nf_task.hpp"
#include "pktio/flow_key.hpp"

namespace nfv::nfs {

class LoadBalancer {
 public:
  enum class Policy { kFlowHash, kRoundRobin };

  struct Backend {
    std::uint32_t ip;
    std::uint64_t packets = 0;
  };

  LoadBalancer(std::vector<std::uint32_t> backend_ips,
               Policy policy = Policy::kFlowHash)
      : policy_(policy) {
    for (const auto ip : backend_ips) backends_.push_back(Backend{ip});
  }

  /// Pick a backend for this packet and rewrite its destination.
  std::uint32_t steer(pktio::Mbuf& pkt) {
    std::size_t index = 0;
    if (policy_ == Policy::kFlowHash) {
      index = pktio::FlowKeyHash{}(pkt.key) % backends_.size();
    } else {
      index = next_rr_++ % backends_.size();
    }
    Backend& backend = backends_[index];
    ++backend.packets;
    pkt.key.dst_ip = backend.ip;
    return backend.ip;
  }

  void install(nf::NfTask& task) {
    task.set_handler([this](pktio::Mbuf& pkt) {
      steer(pkt);
      return nf::NfAction::kForward;
    });
  }

  [[nodiscard]] const std::vector<Backend>& backends() const {
    return backends_;
  }

 private:
  Policy policy_;
  std::vector<Backend> backends_;
  std::size_t next_rr_ = 0;
};

}  // namespace nfv::nfs
