// L4 load-balancer NF.
//
// Spreads connections over a backend pool. Two policies: flow-hash
// (consistent for a connection — what an L4 LB must guarantee) and
// round-robin per packet (for comparison in tests). Rewrites the packet's
// destination to the chosen backend.
//
// Flow-hash mode keeps a real connection table (FlowStore): the backend is
// chosen by hash on first sight and *pinned* thereafter — so a connection
// stays on its backend even if the pool hashing would have moved it, and
// the per-packet cost can distinguish a table hit from a first-packet
// install or an eviction under connection-count pressure.
#pragma once

#include <cstdint>
#include <vector>

#include "flow/flow_store.hpp"
#include "nf/nf_task.hpp"
#include "pktio/flow_key.hpp"

namespace nfv::nfs {

class LoadBalancer {
 public:
  enum class Policy { kFlowHash, kRoundRobin };

  struct Backend {
    std::uint32_t ip;
    std::uint64_t packets = 0;
  };

  /// Per-packet cost by connection-table path (cycles). Round-robin mode
  /// never touches the table and always charges `hit`.
  struct PathCosts {
    Cycles hit = 150;
    Cycles miss = 400;
    Cycles evict = 650;
  };

  LoadBalancer(std::vector<std::uint32_t> backend_ips,
               Policy policy = Policy::kFlowHash,
               std::uint32_t max_connections = 1u << 16)
      : policy_(policy),
        connections_(flow::FlowStore<pktio::FlowKey, std::uint32_t>::Config{
            .max_flows = max_connections,
            .idle_timeout = 0,
            .evict_lru_when_full = true,
            .auto_grow = false}) {
    for (const auto ip : backend_ips) backends_.push_back(Backend{ip});
  }

  /// Pick a backend for this packet, rewrite its destination, and report
  /// the connection-table path taken (round-robin reports kHit: constant
  /// cost, no state).
  flow::StorePath steer_path(pktio::Mbuf& pkt) {
    std::size_t index = 0;
    flow::StorePath path = flow::StorePath::kHit;
    if (policy_ == Policy::kFlowHash) {
      const auto result =
          connections_.install(pkt.key, static_cast<Cycles>(++tick_));
      std::uint32_t& pinned = connections_.state(result.index);
      if (result.path != flow::StorePath::kHit) {
        pinned = static_cast<std::uint32_t>(pktio::FlowKeyHash{}(pkt.key) %
                                            backends_.size());
      }
      index = pinned;
      path = result.path;
    } else {
      index = next_rr_++ % backends_.size();
    }
    Backend& backend = backends_[index];
    ++backend.packets;
    pkt.key.dst_ip = backend.ip;
    return path;
  }

  /// Pick a backend for this packet and rewrite its destination.
  std::uint32_t steer(pktio::Mbuf& pkt) {
    steer_path(pkt);
    return pkt.key.dst_ip;
  }

  void install(nf::NfTask& task) {
    task.set_handler([this](pktio::Mbuf& pkt) {
      steer(pkt);
      return nf::NfAction::kForward;
    });
  }

  /// State-dependent install: steering happens in the cost probe at
  /// burst-assembly time (dequeue order — burst-window invariant) and the
  /// charged cost follows the connection-table path.
  void install(nf::NfTask& task, PathCosts costs) {
    task.cost_model() = nf::CostModel::state_dependent(
        [this, costs](pktio::Mbuf& pkt) {
          switch (steer_path(pkt)) {
            case flow::StorePath::kHit:
              return costs.hit;
            case flow::StorePath::kEvicted:
              return costs.evict;
            default:
              return costs.miss;
          }
        },
        costs.hit);
    task.set_handler(
        [](pktio::Mbuf&) { return nf::NfAction::kForward; });
  }

  [[nodiscard]] const std::vector<Backend>& backends() const {
    return backends_;
  }
  [[nodiscard]] std::size_t active_connections() const {
    return connections_.size();
  }
  [[nodiscard]] std::uint64_t connection_evictions() const {
    return connections_.lru_evictions();
  }

 private:
  Policy policy_;
  std::vector<Backend> backends_;
  flow::FlowStore<pktio::FlowKey, std::uint32_t> connections_;
  std::uint64_t tick_ = 0;
  std::size_t next_rr_ = 0;
};

}  // namespace nfv::nfs
