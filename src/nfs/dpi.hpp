// Deep-packet-inspection NF (signature matcher).
//
// DPI engines scan payloads against a signature set; our packets carry no
// payload bytes, so the substitution (DESIGN.md) is a deterministic
// per-packet synthetic "payload digest" derived from flow identity and
// sequence number, scanned against configured signature digests. This
// preserves what matters to the platform: per-packet work proportional to
// the signature count, a hit/miss outcome, and flow-level alerting.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_set>
#include <vector>

#include "nf/nf_task.hpp"
#include "pktio/flow_key.hpp"

namespace nfv::nfs {

class Dpi {
 public:
  enum class OnMatch { kAlertOnly, kDrop };

  struct Signature {
    std::string name;
    std::uint64_t digest;
    std::uint64_t hits = 0;
  };

  explicit Dpi(OnMatch action = OnMatch::kAlertOnly) : action_(action) {}

  void add_signature(std::string name, std::uint64_t digest) {
    signatures_.push_back(Signature{std::move(name), digest, 0});
  }

  /// Deterministic synthetic payload digest for a packet; tests and
  /// traffic generators can precompute it to plant "malicious" packets.
  [[nodiscard]] static std::uint64_t payload_digest(const pktio::Mbuf& pkt) {
    std::uint64_t h = 0xcbf29ce484222325ULL;
    const auto mix = [&h](std::uint64_t v) {
      h ^= v;
      h *= 0x100000001b3ULL;
    };
    mix(pkt.key.src_ip);
    mix(pkt.key.dst_ip);
    mix(pkt.key.src_port);
    mix(pkt.seq % 97);  // a repeating "content" pattern within the flow
    return h;
  }

  /// Scan one packet; returns true on a signature hit.
  bool scan(const pktio::Mbuf& pkt) {
    const std::uint64_t digest = payload_digest(pkt);
    ++scanned_;
    for (auto& sig : signatures_) {
      if (sig.digest == digest) {
        ++sig.hits;
        ++alerts_;
        return true;
      }
    }
    return false;
  }

  void install(nf::NfTask& task) {
    task.set_handler([this](pktio::Mbuf& pkt) {
      const bool hit = scan(pkt);
      if (hit && action_ == OnMatch::kDrop) return nf::NfAction::kDrop;
      return nf::NfAction::kForward;
    });
  }

  [[nodiscard]] const std::vector<Signature>& signatures() const {
    return signatures_;
  }
  [[nodiscard]] std::uint64_t scanned() const { return scanned_; }
  [[nodiscard]] std::uint64_t alerts() const { return alerts_; }

 private:
  OnMatch action_;
  std::vector<Signature> signatures_;
  std::uint64_t scanned_ = 0;
  std::uint64_t alerts_ = 0;
};

}  // namespace nfv::nfs
