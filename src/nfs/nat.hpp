// Source NAT (NAPT) NF.
//
// Rewrites the source address/port of outbound packets to a public address
// with a per-connection allocated port, maintaining the translation table a
// real NAPT middlebox keeps. The table is a FlowStore (flow-state library):
// the NAT port *is* the pool index plus the port base — vigor's NAT layout,
// where dchain_allocate_new_index() names the port — so ports allocate
// sequentially and an evicted binding's port is reused by the connection
// that displaced it. Translations are stable for a connection's lifetime
// and reclaimed least-recently-translated-first under port exhaustion.
#pragma once

#include <cstdint>

#include "flow/flow_store.hpp"
#include "nf/nf_task.hpp"
#include "pktio/flow_key.hpp"

namespace nfv::nfs {

class Nat {
 public:
  struct Config {
    std::uint32_t public_ip = 0xc0a80001;  ///< 192.168.0.1
    std::uint16_t port_base = 20000;
    std::uint16_t port_count = 10000;
  };

  /// Per-packet cost by translation-table path (cycles): a hit is a probe
  /// plus a header rewrite; a miss adds the binding allocation; an eviction
  /// adds tearing down the displaced binding first. Feeds the s_i estimator,
  /// so NAT load now tracks table churn, not just packet rate.
  struct PathCosts {
    Cycles hit = 220;
    Cycles miss = 600;
    Cycles evict = 950;
  };

  Nat() : Nat(Config{}) {}
  explicit Nat(Config config)
      : config_(config),
        bindings_(flow::FlowStore<BindingKey, Empty, BindingKeyFastHash>::
                      Config{.max_flows = config.port_count,
                             .idle_timeout = 0,
                             .evict_lru_when_full = true,
                             .auto_grow = false}) {}

  struct Translation {
    std::uint32_t orig_ip;
    std::uint16_t orig_port;
    std::uint16_t nat_port;
  };

  /// Translate (and rewrite) an outbound packet's source, reporting which
  /// table path it took; allocates a binding on first sight of a
  /// connection, evicting the least-recently-translated one when the port
  /// pool is exhausted.
  flow::StorePath translate_path(pktio::Mbuf& pkt) {
    const BindingKey key{pkt.key.src_ip, pkt.key.src_port, pkt.key.proto};
    const auto result = bindings_.install(key, static_cast<Cycles>(++tick_));
    if (result.path != flow::StorePath::kHit) {
      ++allocations_;
      if (result.path == flow::StorePath::kEvicted) ++evictions_;
    }
    pkt.key.src_ip = config_.public_ip;
    pkt.key.src_port = port_of(result.index);
    ++translated_;
    return result.path;
  }

  void translate(pktio::Mbuf& pkt) { translate_path(pkt); }

  /// Classic handler: translation runs inside the packet handler; the
  /// task's configured cost model is untouched.
  void install(nf::NfTask& task) {
    task.set_handler([this](pktio::Mbuf& pkt) {
      translate(pkt);
      return nf::NfAction::kForward;
    });
  }

  /// State-dependent install: the cost probe performs the translation at
  /// burst-assembly time and charges the path-specific cost, so s_i shifts
  /// with binding-table hits, misses and evictions. The handler just
  /// forwards — the rewrite already happened, in the same dequeue order a
  /// handler would have run in (burst-window invariant).
  void install(nf::NfTask& task, PathCosts costs) {
    task.cost_model() = nf::CostModel::state_dependent(
        [this, costs](pktio::Mbuf& pkt) {
          switch (translate_path(pkt)) {
            case flow::StorePath::kHit:
              return costs.hit;
            case flow::StorePath::kEvicted:
              return costs.evict;
            default:
              return costs.miss;
          }
        },
        costs.hit);
    task.set_handler(
        [](pktio::Mbuf&) { return nf::NfAction::kForward; });
  }

  /// Existing binding for a source (for tests/inspection); 0 if none.
  [[nodiscard]] std::uint16_t binding(std::uint32_t ip, std::uint16_t port,
                                      std::uint8_t proto) const {
    const std::uint32_t idx = bindings_.peek(BindingKey{ip, port, proto});
    return idx == flow::IndexPool::kNoIndex ? 0 : port_of(idx);
  }

  [[nodiscard]] std::size_t active_bindings() const {
    return bindings_.size();
  }
  [[nodiscard]] std::uint64_t translated() const { return translated_; }
  [[nodiscard]] std::uint64_t allocations() const { return allocations_; }
  [[nodiscard]] std::uint64_t evictions() const { return evictions_; }

 private:
  struct BindingKey {
    std::uint32_t ip;
    std::uint16_t port;
    std::uint8_t proto;
    friend bool operator==(const BindingKey&, const BindingKey&) = default;
  };
  struct BindingKeyFastHash {
    std::uint64_t operator()(const BindingKey& k) const {
      std::uint64_t h = (static_cast<std::uint64_t>(k.ip) << 24) |
                        (static_cast<std::uint64_t>(k.port) << 8) | k.proto;
      h = (h ^ 0x9e3779b97f4a7c15ULL) * 0xbf58476d1ce4e5b9ULL;
      h ^= h >> 29;
      h *= 0x94d049bb133111ebULL;
      h ^= h >> 32;
      return h;
    }
  };
  struct Empty {};

  [[nodiscard]] std::uint16_t port_of(std::uint32_t index) const {
    return static_cast<std::uint16_t>(config_.port_base + index);
  }

  Config config_;
  flow::FlowStore<BindingKey, Empty, BindingKeyFastHash> bindings_;
  std::uint64_t tick_ = 0;  ///< Logical clock ordering the LRU chain.
  std::uint64_t translated_ = 0;
  std::uint64_t allocations_ = 0;
  std::uint64_t evictions_ = 0;
};

}  // namespace nfv::nfs
