// Source NAT (NAPT) NF.
//
// Rewrites the source address/port of outbound packets to a public address
// with a per-connection allocated port, maintaining the translation table a
// real NAPT middlebox keeps. Translations are stable for a connection's
// lifetime and reclaimed when the port pool wraps (oldest-first), which is
// the classic behaviour under port exhaustion.
#pragma once

#include <cstdint>
#include <deque>
#include <unordered_map>

#include "nf/nf_task.hpp"
#include "pktio/flow_key.hpp"

namespace nfv::nfs {

class Nat {
 public:
  struct Config {
    std::uint32_t public_ip = 0xc0a80001;  ///< 192.168.0.1
    std::uint16_t port_base = 20000;
    std::uint16_t port_count = 10000;
  };

  Nat() : Nat(Config{}) {}
  explicit Nat(Config config) : config_(config) {}

  struct Translation {
    std::uint32_t orig_ip;
    std::uint16_t orig_port;
    std::uint16_t nat_port;
  };

  /// Translate (and rewrite) an outbound packet's source; allocates a new
  /// binding on first sight of a connection.
  void translate(pktio::Mbuf& pkt) {
    const BindingKey key{pkt.key.src_ip, pkt.key.src_port, pkt.key.proto};
    auto it = bindings_.find(key);
    if (it == bindings_.end()) {
      const std::uint16_t nat_port = allocate_port(key);
      it = bindings_.emplace(key, nat_port).first;
      ++allocations_;
    }
    pkt.key.src_ip = config_.public_ip;
    pkt.key.src_port = it->second;
    ++translated_;
  }

  void install(nf::NfTask& task) {
    task.set_handler([this](pktio::Mbuf& pkt) {
      translate(pkt);
      return nf::NfAction::kForward;
    });
  }

  /// Existing binding for a source (for tests/inspection); 0 if none.
  [[nodiscard]] std::uint16_t binding(std::uint32_t ip, std::uint16_t port,
                                      std::uint8_t proto) const {
    const auto it = bindings_.find(BindingKey{ip, port, proto});
    return it == bindings_.end() ? 0 : it->second;
  }

  [[nodiscard]] std::size_t active_bindings() const { return bindings_.size(); }
  [[nodiscard]] std::uint64_t translated() const { return translated_; }
  [[nodiscard]] std::uint64_t allocations() const { return allocations_; }
  [[nodiscard]] std::uint64_t evictions() const { return evictions_; }

 private:
  struct BindingKey {
    std::uint32_t ip;
    std::uint16_t port;
    std::uint8_t proto;
    friend bool operator==(const BindingKey&, const BindingKey&) = default;
  };
  struct BindingKeyHash {
    std::size_t operator()(const BindingKey& k) const {
      std::uint64_t h = k.ip;
      h = h * 0x100000001b3ULL ^ k.port;
      h = h * 0x100000001b3ULL ^ k.proto;
      return static_cast<std::size_t>(h);
    }
  };

  std::uint16_t allocate_port(const BindingKey& key) {
    if (allocation_order_.size() >= config_.port_count) {
      // Port pool exhausted: evict the oldest binding.
      const BindingKey oldest = allocation_order_.front();
      allocation_order_.pop_front();
      const auto it = bindings_.find(oldest);
      const std::uint16_t freed = it->second;
      bindings_.erase(it);
      ++evictions_;
      allocation_order_.push_back(key);
      return freed;
    }
    allocation_order_.push_back(key);
    return static_cast<std::uint16_t>(config_.port_base +
                                      allocation_order_.size() - 1);
  }

  Config config_;
  std::unordered_map<BindingKey, std::uint16_t, BindingKeyHash> bindings_;
  std::deque<BindingKey> allocation_order_;
  std::uint64_t translated_ = 0;
  std::uint64_t allocations_ = 0;
  std::uint64_t evictions_ = 0;
};

}  // namespace nfv::nfs
