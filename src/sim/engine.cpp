#include "sim/engine.hpp"

#include <cassert>
#include <memory>
#include <utility>

namespace nfv::sim {

EventId Engine::schedule_at(Cycles when, Callback cb) {
  assert(when >= now_ && "cannot schedule into the past");
  if (when < now_) when = now_;
  const EventId id = next_id_++;
  heap_.push(Event{when, id, std::move(cb)});
  return id;
}

EventId Engine::schedule_periodic(Cycles period, Callback cb) {
  assert(period > 0);
  const EventId logical = next_id_++;
  // The re-arming wrapper owns the user callback; each occurrence updates
  // the logical->occurrence map so cancel(logical) always finds the live one.
  auto rearm = std::make_shared<Callback>();
  auto shared_cb = std::make_shared<Callback>(std::move(cb));
  // The engine owns the wrapper (periodic_rearm_); occurrences capture a
  // weak_ptr so cancel()/destruction release it instead of a shared_ptr
  // cycle keeping it alive forever.
  std::weak_ptr<Callback> weak_rearm = rearm;
  *rearm = [this, logical, period, shared_cb, weak_rearm]() {
    (*shared_cb)();
    // The callback may have cancelled the periodic task.
    auto it = periodic_current_.find(logical);
    if (it == periodic_current_.end()) return;
    auto self = weak_rearm.lock();
    if (!self) return;
    it->second = schedule_at(now_ + period, *self);
  };
  periodic_rearm_[logical] = rearm;
  periodic_current_[logical] = schedule_at(now_ + period, *rearm);
  return logical;
}

bool Engine::cancel(EventId id) {
  if (id == kInvalidEventId) return false;
  if (auto it = periodic_current_.find(id); it != periodic_current_.end()) {
    const EventId occurrence = it->second;
    periodic_current_.erase(it);
    periodic_rearm_.erase(id);
    cancelled_.insert(occurrence);
    return true;
  }
  // One-shot: only mark if plausibly pending (ids are monotonically issued).
  if (id >= next_id_) return false;
  return cancelled_.insert(id).second;
}

std::uint64_t Engine::run_until(Cycles deadline) {
  std::uint64_t n = 0;
  while (!heap_.empty() && heap_.top().when <= deadline) {
    Event ev = std::move(const_cast<Event&>(heap_.top()));
    heap_.pop();
    if (auto it = cancelled_.find(ev.id); it != cancelled_.end()) {
      cancelled_.erase(it);
      continue;
    }
    now_ = ev.when;
    ev.cb();
    ++n;
    ++dispatched_;
  }
  if (now_ < deadline) now_ = deadline;
  return n;
}

std::uint64_t Engine::run() {
  std::uint64_t n = 0;
  while (!heap_.empty()) {
    Event ev = std::move(const_cast<Event&>(heap_.top()));
    heap_.pop();
    if (auto it = cancelled_.find(ev.id); it != cancelled_.end()) {
      cancelled_.erase(it);
      continue;
    }
    now_ = ev.when;
    ev.cb();
    ++n;
    ++dispatched_;
  }
  return n;
}

}  // namespace nfv::sim
