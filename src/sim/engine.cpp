#include "sim/engine.hpp"

#include <algorithm>
#include <cstring>
#include <limits>

namespace nfv::sim {

const char* to_string(EngineBackend backend) {
  switch (backend) {
    case EngineBackend::kHeap:
      return "heap";
    case EngineBackend::kWheel:
      return "wheel";
  }
  return "?";
}

bool parse_engine_backend(const char* text, EngineBackend& out) {
  if (text == nullptr) return false;
  if (std::strcmp(text, "heap") == 0) {
    out = EngineBackend::kHeap;
    return true;
  }
  if (std::strcmp(text, "wheel") == 0) {
    out = EngineBackend::kWheel;
    return true;
  }
  return false;
}

void Engine::set_backend(EngineBackend backend) {
  assert(pending_ == 0 && heap_.empty() &&
         "the ready-queue backend can only change while the queue is empty");
  backend_ = backend;
  if (backend == EngineBackend::kWheel && wheel_cells_.empty()) {
    wheel_cells_.resize(kWheelCells);
  }
  wheel_time_ = now_;
}

void Engine::reserve(std::size_t pending_hint) {
  if (pending_hint == 0) return;
  const std::size_t target_pages = (pending_hint + kPageSize - 1) >> kPageShift;
  pages_.reserve(target_pages);
  while (pages_.size() < target_pages) {
    pages_.push_back(std::make_unique<Slot[]>(kPageSize));
  }
  if (backend_ == EngineBackend::kHeap) {
    heap_.reserve(pending_hint);
  } else {
    // Wheel storage is spread across per-cell buckets that grow to their
    // working set on first contact; pre-size only the near-horizon window,
    // which sees every event once.
    window_.reserve(std::min(pending_hint, std::size_t{1} << 16));
  }
}

/// Destroy the slot's callback and return the slot to the free list. A
/// stale EventId or heap key can never match the slot again: both carry a
/// sequence number, and sequence numbers are never reused. Never called on
/// a slot whose callback is currently executing — dispatch tears those down
/// itself after the call returns.
void Engine::release_slot(std::uint32_t index) {
  Slot& slot = slot_ref(index);
  slot.cb.reset();
  slot.period = 0;
  slot.state = free_head_;
  free_head_ = index;
}

void Engine::heap_pop() {
  const Key last = heap_.back();
  heap_.pop_back();
  const std::size_t n = heap_.size();
  if (n == 0) return;
  std::size_t i = 0;
  for (;;) {
    const std::size_t first_child = (i << kArityShift) + 1;
    if (first_child >= n) break;
    // Branchless min-child scan: each step is a single 128-bit compare plus
    // conditional moves — the key IS the comparison key.
    const std::size_t end =
        first_child + kArity < n ? first_child + kArity : n;
    std::size_t best = first_child;
    Key best_key = heap_[first_child];
    for (std::size_t c = first_child + 1; c < end; ++c) {
      const Key c_key = heap_[c];
      best = c_key < best_key ? c : best;
      best_key = c_key < best_key ? c_key : best_key;
    }
    if (last <= best_key) break;
    // Large heaps are sift-down-bound on memory: start pulling the next
    // level's children in while this level's store completes.
    const std::size_t grandchild = (best << kArityShift) + 1;
    if (grandchild < n) {
      __builtin_prefetch(&heap_[grandchild]);
      __builtin_prefetch(&heap_[grandchild + kArity - 1]);
    }
    heap_[i] = best_key;
    i = best;
  }
  heap_[i] = last;
}

bool Engine::cancel(EventId id) {
  if (id == kInvalidEventId) return false;
  const std::uint32_t index = static_cast<std::uint32_t>(id >> kSeqBits);
  const std::uint64_t seq = id & kSeqMask;
  if (index >= slot_count_) return false;
  Slot& slot = slot_ref(index);
  if (slot.period > 0) {
    // Periodic: the armed sequence number advances on every re-arm, so the
    // id is matched against the tenancy's recorded birth seq instead. A
    // reused slot records a new (never-reused) birth seq, so a stale id
    // cannot cancel a new tenant.
    if (periodic_birth_[index] != seq) return false;
    if (slot.state & kArmedBit) {
      --pending_;
      release_slot(index);
      return true;
    }
    if (slot.state == kIdle) {
      // Mid-callback self-cancel: the occurrence is already popped
      // (pending_ was adjusted) and the callback is executing in place, so
      // just mark it — dispatch_periodic sees the mark when the call
      // returns and tears the slot down instead of re-arming.
      slot.state = kCancelledBit;
      return true;
    }
    return false;  // already self-cancelled in this very callback
  }
  // One-shot: pending iff armed with exactly this sequence number. A fired,
  // cancelled, or recycled slot can never match (seqs are unique), and a
  // free slot's state has no armed bit.
  if (slot.state != (kArmedBit | seq)) return false;
  // Cancellation is lazy on both backends: the slot is recycled right away
  // (its sequence number is spent, so the stale by-value key in the heap or
  // in a wheel bucket can never match again) and dispatch's armed check
  // discards the key for free when its timestamp comes up.
  --pending_;
  release_slot(index);
  return true;
}

// -- timer-wheel backend ------------------------------------------------------

/// How many entries ahead of the one being processed to prefetch its slot:
/// far enough to cover the per-entry work, near enough to stay inside
/// typical batches.
constexpr std::size_t kSlotLookahead = 8;

void Engine::wheel_set_bit(std::size_t cell) {
  wheel_bits_[cell >> 6] |= std::uint64_t{1} << (cell & 63);
  wheel_level_mask_ |=
      static_cast<std::uint8_t>(1u << (cell >> kWheelLevelBits));
}

void Engine::wheel_clear_bit(std::size_t cell) {
  wheel_bits_[cell >> 6] &= ~(std::uint64_t{1} << (cell & 63));
  const unsigned level = static_cast<unsigned>(cell >> kWheelLevelBits);
  const std::uint64_t* w = &wheel_bits_[level * kWheelWordsPerLevel];
  if ((w[0] | w[1] | w[2] | w[3]) == 0) {
    wheel_level_mask_ &= static_cast<std::uint8_t>(~(1u << level));
  }
}

/// First occupied cell index >= `from` at `level`, or -1.
int Engine::wheel_find_from(unsigned level, unsigned from) const {
  const std::uint64_t* words = &wheel_bits_[level * kWheelWordsPerLevel];
  std::size_t word = from >> 6;
  std::uint64_t cur = words[word] & (~std::uint64_t{0} << (from & 63));
  for (;;) {
    if (cur != 0) {
      return static_cast<int>((word << 6) + __builtin_ctzll(cur));
    }
    if (++word == kWheelWordsPerLevel) return -1;
    cur = words[word];
  }
}

void Engine::wheel_insert(Key key) {
  const Cycles when = key_when(key);
  assert(when >= wheel_time_ && "the wheel cursor never passes a pending event");
  const std::uint64_t w = static_cast<std::uint64_t>(when);
  const std::uint64_t base = static_cast<std::uint64_t>(wheel_time_);
  const std::uint64_t delta = w - base;
  // Smallest level whose shifted cursor distance fits one wheel turn. The
  // log2 guess can land one level low when the shift truncation adds a
  // unit (floor(w/g) - floor(base/g) can be 256 with delta < 256*g).
  unsigned level =
      delta == 0
          ? 0u
          : static_cast<unsigned>(63 - __builtin_clzll(delta)) / kWheelLevelBits;
  unsigned shift = kWheelLevelBits * level;
  if (((w >> shift) - (base >> shift)) >= kWheelSpan) {
    ++level;
    shift += kWheelLevelBits;
  }
  assert(level < kWheelLevels);
  const std::size_t cell =
      level * kWheelSpan + static_cast<std::size_t>((w >> shift) & (kWheelSpan - 1));
  std::vector<Key>& bucket = wheel_cells_[cell];
  if (bucket.empty()) wheel_set_bit(cell);
  bucket.push_back(key);
}

/// Earliest pending event time, cascading higher levels down as the search
/// narrows. Level-1 buckets are not cascaded into level 0: the whole
/// 256-cycle span becomes the sorted near-horizon window in one swap+sort,
/// so the per-event work between insert and dispatch is a streaming pass
/// instead of bucket-to-bucket shuffling. Returns a time > `deadline`
/// (without advancing the wheel) as soon as it can prove nothing is due;
/// must only be called with pending_ > 0 and the ready buffer drained.
Cycles Engine::wheel_next_time(Cycles deadline) {
  for (;;) {
    const bool have_window = wpos_ < window_.size();
    const Cycles window_time =
        have_window ? key_when(window_[wpos_]) : Cycles{0};
    bool found = false;
    unsigned best_level = 0;
    Cycles best_time = 0;
    std::size_t best_cell = 0;
    for (unsigned level = 0; level < kWheelLevels; ++level) {
      if (!(wheel_level_mask_ & (1u << level))) continue;
      const unsigned shift = kWheelLevelBits * level;
      const std::uint64_t cursor =
          static_cast<std::uint64_t>(wheel_time_) >> shift;
      const unsigned ck = static_cast<unsigned>(cursor & (kWheelSpan - 1));
      // Cells at/after the cursor hold this revolution's times; cells
      // before it wrapped into the next one. Buckets never mix revolutions
      // (see the uniqueness note at the backend overview), so the cell
      // start is exact at level 0 and a tight lower bound above.
      int idx = wheel_find_from(level, ck);
      std::uint64_t units;
      if (idx >= 0) {
        units = cursor + (static_cast<unsigned>(idx) - ck);
      } else {
        idx = wheel_find_from(level, 0);
        units = cursor + kWheelSpan - ck + static_cast<unsigned>(idx);
      }
      const Cycles t = static_cast<Cycles>(units << shift);
      // <= so ties go to the higher level: a coarse cell whose span starts
      // at the next dispatch time may hold events due exactly then, and
      // they must join the level-0 batch before it fires.
      if (!found || t <= best_time) {
        found = true;
        best_level = level;
        best_time = t;
        best_cell =
            level * kWheelSpan + static_cast<std::size_t>(static_cast<unsigned>(idx));
      }
    }
    if (!found) {
      assert(have_window && "wheel_next_time needs a pending event");
      return window_time;
    }
    // The window wins ties against coarse cells: while it holds events,
    // every level-1 cell starts at or past the window span's end, and a
    // tying level-2+ span start provably holds nothing inside the window's
    // horizon (events that near land at level 0 once the cursor caught up,
    // and were flushed below level 2 before the window filled). A tying
    // level-0 cell joins the window's batch at dispatch instead.
    if (have_window && window_time <= best_time) return window_time;
    if (best_time > deadline || best_level == 0) return best_time;
    // Advance the cursor to the cell's span start (never backwards — a
    // cell whose span straddles the cursor reports its span start).
    if (best_time > wheel_time_) wheel_time_ = best_time;
    std::vector<Key>& bucket = wheel_cells_[best_cell];
    wheel_clear_bit(best_cell);
    if (best_level == 1) {
      // Bulk-collect into the near-horizon window: the whole 256-cycle
      // span is taken by swapping the bucket's storage (the bucket keeps
      // the old window's capacity for its next revolution) and sorted once
      // — no per-event cascade into level-0 buckets. Only reachable with
      // the window drained — see the tie rule above.
      assert(wpos_ == window_.size() && "bulk-collect needs a drained window");
      window_.swap(bucket);
      bucket.clear();
      wpos_ = 0;
      std::sort(window_.begin(), window_.end());
    } else {
      // Cascade: redistribute the bucket, a streaming sweep that provably
      // lands every key at a lower level (never back in this bucket, so
      // iterating in place is safe).
      for (const Key k : bucket) wheel_insert(k);
      bucket.clear();
    }
  }
}

std::uint64_t Engine::dispatch_wheel(Cycles deadline) {
  std::uint64_t n = 0;
  while (pending_ > 0) {
    const Cycles t = wheel_next_time(deadline);
    if (t > deadline) break;
    const std::size_t cell =
        static_cast<std::uint64_t>(t) & (kWheelSpan - 1);
    now_ = t;
    if (t > wheel_time_) wheel_time_ = t;
    // One batch per timestamp: merge the window's due entries with the
    // live level-0 bucket, and keep draining until callbacks stop adding
    // same-cycle work — an event scheduled at exactly now() lands in this
    // bucket with a larger seq, and the heap would pop it within the same
    // timestamp batch.
    for (;;) {
      ready_.clear();
      // The window is sorted, so its due entries arrive already in (seq)
      // order; only a level-0 contribution forces a batch sort.
      while (wpos_ < window_.size() && key_when(window_[wpos_]) == t) {
        ready_.push_back(static_cast<std::uint64_t>(window_[wpos_]));
        ++wpos_;
      }
      bool need_sort = false;
      std::vector<Key>& bucket = wheel_cells_[cell];
      // All level-0 residents share one `when` (buckets never mix wheel
      // revolutions), so checking the first key suffices; the guard skips
      // a bucket held by a later revolution's events when the batch is fed
      // purely from the window.
      if (!bucket.empty() && key_when(bucket.front()) == t) {
        for (const Key k : bucket) {
          ready_.push_back(static_cast<std::uint64_t>(k));
        }
        bucket.clear();
        wheel_clear_bit(cell);
        need_sort = true;
      }
      if (ready_.empty()) break;
      if (need_sort) std::sort(ready_.begin(), ready_.end());
      const std::size_t batch = ready_.size();
      for (std::size_t i = 0; i < batch; ++i) {
        // Resolve the slot's (random-access) cache miss a few events
        // early; by dispatch time its line is usually already in flight.
        // When the lookahead runs past this batch it continues into the
        // window's upcoming entries, so the prefetch stream never stalls
        // at batch boundaries.
        const std::size_t ahead = i + kSlotLookahead;
        if (ahead < batch) {
          __builtin_prefetch(&slot_ref(
              static_cast<std::uint32_t>(ready_[ahead]) & kSlotMask));
        } else if (const std::size_t w = wpos_ + (ahead - batch);
                   w < window_.size()) {
          __builtin_prefetch(&slot_ref(static_cast<std::uint32_t>(
              static_cast<std::uint64_t>(window_[w]) & kSlotMask)));
        }
        const std::uint64_t key = ready_[i];
        const std::uint32_t index = static_cast<std::uint32_t>(key) & kSlotMask;
        Slot& slot = slot_ref(index);
        if (slot.state != (kArmedBit | (key >> kSlotBits))) {
          continue;  // cancelled while parked in the buffer or the window
        }
        --pending_;
        if (slot.period > 0) {
          dispatch_periodic(index);
        } else {
          slot.state = kIdle;
          slot.cb();
          slot.cb.reset();
          slot.state = free_head_;
          free_head_ = index;
        }
        ++n;
        ++dispatched_;
      }
    }
    if (wpos_ == window_.size() && !window_.empty()) {
      window_.clear();
      wpos_ = 0;
    }
  }
  return n;
}

std::uint64_t Engine::dispatch_until(Cycles deadline) {
  return backend_ == EngineBackend::kHeap ? dispatch_heap(deadline)
                                          : dispatch_wheel(deadline);
}

std::uint64_t Engine::dispatch_heap(Cycles deadline) {
  std::uint64_t n = 0;
  while (!heap_.empty()) {
    const Key top = heap_.front();
    const Cycles when = key_when(top);
    if (when > deadline) break;
    const std::uint64_t low = static_cast<std::uint64_t>(top);
    const std::uint32_t index = static_cast<std::uint32_t>(low) & kSlotMask;
    // Touch the slot before the sift-down so its (random-access) cache miss
    // resolves while heap_pop walks the tree.
    Slot& slot = slot_ref(index);
    __builtin_prefetch(&slot);
    heap_pop();
    if (slot.state != (kArmedBit | (low >> kSlotBits))) {
      continue;  // lazily-cancelled entry
    }
    now_ = when;
    --pending_;
    if (slot.period > 0) {
      dispatch_periodic(index);
    } else {
      // One-shot: disarm first (so a self-cancel inside the callback is a
      // no-op), invoke in place — the slot's page never moves, and the slot
      // can't be recycled because it only reaches the free list afterwards.
      slot.state = kIdle;
      slot.cb();
      slot.cb.reset();
      slot.state = free_head_;
      free_head_ = index;
    }
    ++n;
    ++dispatched_;
  }
  return n;
}

void Engine::dispatch_periodic(std::uint32_t index) {
  Slot& slot = slot_ref(index);
  slot.state = kIdle;
  slot.cb();  // in place; a self-cancel inside only sets kCancelledBit
  if (slot.state != kIdle) {
    // Cancelled from inside its own callback: now that the call returned,
    // the storage can actually be torn down.
    slot.cb.reset();
    slot.period = 0;
    slot.state = free_head_;
    free_head_ = index;
    return;
  }
  // Re-arm with a fresh sequence number: each occurrence must sort after
  // same-timestamp events scheduled before it, exactly as if it had been
  // re-scheduled by hand. The EventId's birth seq stays valid via
  // periodic_birth_.
  const std::uint64_t seq = next_seq_++;
  slot.state = kArmedBit | seq;
  if (backend_ == EngineBackend::kHeap) {
    heap_push(make_key(now_ + slot.period, seq, index));
  } else {
    // On the wheel the slot keeps its storage and identity; only the
    // occurrence's key moves to the next cell's bucket.
    wheel_insert(make_key(now_ + slot.period, seq, index));
  }
  ++pending_;
}

std::uint64_t Engine::run_until(Cycles deadline) {
  const std::uint64_t n = dispatch_until(deadline);
  if (now_ < deadline) now_ = deadline;
  return n;
}

std::uint64_t Engine::run() {
  return dispatch_until(std::numeric_limits<Cycles>::max());
}

}  // namespace nfv::sim
