#include "sim/engine.hpp"

#include <limits>

namespace nfv::sim {

/// Destroy the slot's callback and return the slot to the free list. A
/// stale EventId or heap key can never match the slot again: both carry a
/// sequence number, and sequence numbers are never reused. Never called on
/// a slot whose callback is currently executing — dispatch tears those down
/// itself after the call returns.
void Engine::release_slot(std::uint32_t index) {
  Slot& slot = slot_ref(index);
  slot.cb.reset();
  slot.period = 0;
  slot.state = free_head_;
  free_head_ = index;
}

void Engine::heap_pop() {
  const Key last = heap_.back();
  heap_.pop_back();
  const std::size_t n = heap_.size();
  if (n == 0) return;
  std::size_t i = 0;
  for (;;) {
    const std::size_t first_child = (i << kArityShift) + 1;
    if (first_child >= n) break;
    // Branchless min-child scan: each step is a single 128-bit compare plus
    // conditional moves — the key IS the comparison key.
    const std::size_t end =
        first_child + kArity < n ? first_child + kArity : n;
    std::size_t best = first_child;
    Key best_key = heap_[first_child];
    for (std::size_t c = first_child + 1; c < end; ++c) {
      const Key c_key = heap_[c];
      best = c_key < best_key ? c : best;
      best_key = c_key < best_key ? c_key : best_key;
    }
    if (last <= best_key) break;
    // Large heaps are sift-down-bound on memory: start pulling the next
    // level's children in while this level's store completes.
    const std::size_t grandchild = (best << kArityShift) + 1;
    if (grandchild < n) {
      __builtin_prefetch(&heap_[grandchild]);
      __builtin_prefetch(&heap_[grandchild + kArity - 1]);
    }
    heap_[i] = best_key;
    i = best;
  }
  heap_[i] = last;
}

bool Engine::cancel(EventId id) {
  if (id == kInvalidEventId) return false;
  const std::uint32_t index = static_cast<std::uint32_t>(id >> kSeqBits);
  const std::uint64_t seq = id & kSeqMask;
  if (index >= slot_count_) return false;
  Slot& slot = slot_ref(index);
  if (slot.period > 0) {
    // Periodic: the armed sequence number advances on every re-arm, so the
    // id is matched against the tenancy's recorded birth seq instead. A
    // reused slot records a new (never-reused) birth seq, so a stale id
    // cannot cancel a new tenant.
    if (periodic_birth_[index] != seq) return false;
    if (slot.state & kArmedBit) {
      --pending_;
      release_slot(index);
      return true;
    }
    if (slot.state == kIdle) {
      // Mid-callback self-cancel: the occurrence is already popped
      // (pending_ was adjusted) and the callback is executing in place, so
      // just mark it — dispatch_periodic sees the mark when the call
      // returns and tears the slot down instead of re-arming.
      slot.state = kCancelledBit;
      return true;
    }
    return false;  // already self-cancelled in this very callback
  }
  // One-shot: pending iff armed with exactly this sequence number. A fired,
  // cancelled, or recycled slot can never match (seqs are unique), and a
  // free slot's state has no armed bit.
  if (slot.state != (kArmedBit | seq)) return false;
  --pending_;
  release_slot(index);
  return true;
}

std::uint64_t Engine::dispatch_until(Cycles deadline) {
  std::uint64_t n = 0;
  while (!heap_.empty()) {
    const Key top = heap_.front();
    const Cycles when = key_when(top);
    if (when > deadline) break;
    const std::uint64_t low = static_cast<std::uint64_t>(top);
    const std::uint32_t index = static_cast<std::uint32_t>(low) & kSlotMask;
    // Touch the slot before the sift-down so its (random-access) cache miss
    // resolves while heap_pop walks the tree.
    Slot& slot = slot_ref(index);
    __builtin_prefetch(&slot);
    heap_pop();
    if (slot.state != (kArmedBit | (low >> kSlotBits))) {
      continue;  // lazily-cancelled entry
    }
    now_ = when;
    --pending_;
    if (slot.period > 0) {
      dispatch_periodic(index);
    } else {
      // One-shot: disarm first (so a self-cancel inside the callback is a
      // no-op), invoke in place — the slot's page never moves, and the slot
      // can't be recycled because it only reaches the free list afterwards.
      slot.state = kIdle;
      slot.cb();
      slot.cb.reset();
      slot.state = free_head_;
      free_head_ = index;
    }
    ++n;
    ++dispatched_;
  }
  return n;
}

void Engine::dispatch_periodic(std::uint32_t index) {
  Slot& slot = slot_ref(index);
  slot.state = kIdle;
  slot.cb();  // in place; a self-cancel inside only sets kCancelledBit
  if (slot.state != kIdle) {
    // Cancelled from inside its own callback: now that the call returned,
    // the storage can actually be torn down.
    slot.cb.reset();
    slot.period = 0;
    slot.state = free_head_;
    free_head_ = index;
    return;
  }
  // Re-arm with a fresh sequence number: each occurrence must sort after
  // same-timestamp events scheduled before it, exactly as if it had been
  // re-scheduled by hand. The EventId's birth seq stays valid via
  // periodic_birth_.
  const std::uint64_t seq = next_seq_++;
  slot.state = kArmedBit | seq;
  heap_push(make_key(now_ + slot.period, seq, index));
  ++pending_;
}

std::uint64_t Engine::run_until(Cycles deadline) {
  const std::uint64_t n = dispatch_until(deadline);
  if (now_ < deadline) now_ = deadline;
  return n;
}

std::uint64_t Engine::run() {
  return dispatch_until(std::numeric_limits<Cycles>::max());
}

}  // namespace nfv::sim
