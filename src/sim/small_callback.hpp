// Small-buffer-optimized event callback for the discrete-event engine.
//
// The engine schedules millions of `void()` callbacks per simulated second,
// and nearly all of them are tiny lambdas capturing a `this` pointer and at
// most a couple of words. std::function heap-allocates and carries copy
// machinery we never use; this type stores callables up to kInlineSize bytes
// in place (larger ones fall back to one heap allocation), is move-only, and
// relocates with a single indirect call — exactly what a pooled event slot
// needs when a callback is moved out for dispatch.
#pragma once

#include <cstddef>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

namespace nfv::sim {

namespace detail {

struct CallbackVTable {
  void (*invoke)(void* storage);
  /// Move-construct the callable into `dst` from `src`, then destroy `src`.
  void (*relocate)(void* dst, void* src);
  void (*destroy)(void* storage);  ///< null when destruction is a no-op
};

template <typename F>
F* stored(void* storage) {
  return std::launder(reinterpret_cast<F*>(storage));
}

template <typename F>
inline constexpr CallbackVTable kInlineCallbackVTable = {
    [](void* s) { (*stored<F>(s))(); },
    [](void* dst, void* src) {
      F* from = stored<F>(src);
      ::new (dst) F(std::move(*from));
      from->~F();
    },
    // Null destroy marks "nothing to tear down": destruction of the common
    // capture-a-pointer lambda costs no indirect call at all.
    std::is_trivially_destructible_v<F>
        ? nullptr
        : +[](void* s) { stored<F>(s)->~F(); },
};

template <typename F>
inline constexpr CallbackVTable kHeapCallbackVTable = {
    [](void* s) { (**stored<F*>(s))(); },
    [](void* dst, void* src) {
      // The stored pointer is trivially destructible; relocation is a copy.
      ::new (dst) F*(*stored<F*>(src));
    },
    [](void* s) { delete *stored<F*>(s); },
};

}  // namespace detail

class SmallCallback {
 public:
  /// Inline capacity. Sized so a std::function (32 bytes on the common
  /// ABIs) and every capture list in this codebase stays in place, while a
  /// whole engine event slot (callback + timing metadata) still packs into
  /// one 64-byte cache line.
  static constexpr std::size_t kInlineSize = 40;

  SmallCallback() = default;

  template <typename F,
            typename D = std::decay_t<F>,
            typename = std::enable_if_t<!std::is_same_v<D, SmallCallback> &&
                                        std::is_invocable_r_v<void, D&>>>
  SmallCallback(F&& f) {  // NOLINT(google-explicit-constructor)
    emplace(std::forward<F>(f));
  }

  /// Construct a callable directly into the buffer, replacing any current
  /// one. This is the engine's schedule path: the lambda is built in its
  /// event slot at the call site, with no intermediate SmallCallback move.
  template <typename F, typename D = std::decay_t<F>>
  void emplace(F&& f) {
    static_assert(std::is_invocable_r_v<void, D&>);
    reset();
    if constexpr (sizeof(D) <= kInlineSize &&
                  alignof(D) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<D>) {
      ::new (static_cast<void*>(buf_)) D(std::forward<F>(f));
      vt_ = &detail::kInlineCallbackVTable<D>;
    } else {
      ::new (static_cast<void*>(buf_)) D*(new D(std::forward<F>(f)));
      vt_ = &detail::kHeapCallbackVTable<D>;
    }
  }

  SmallCallback(SmallCallback&& other) noexcept { move_from(other); }
  SmallCallback& operator=(SmallCallback&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }
  SmallCallback(const SmallCallback&) = delete;
  SmallCallback& operator=(const SmallCallback&) = delete;

  ~SmallCallback() { reset(); }

  [[nodiscard]] explicit operator bool() const { return vt_ != nullptr; }

  void operator()() { vt_->invoke(buf_); }

  void reset() {
    if (vt_ != nullptr) {
      if (vt_->destroy != nullptr) vt_->destroy(buf_);
      vt_ = nullptr;
    }
  }

 private:
  void move_from(SmallCallback& other) noexcept {
    vt_ = other.vt_;
    if (vt_ != nullptr) {
      vt_->relocate(buf_, other.buf_);
      other.vt_ = nullptr;
    }
  }

  alignas(std::max_align_t) std::byte buf_[kInlineSize];
  const detail::CallbackVTable* vt_ = nullptr;
};

}  // namespace nfv::sim
