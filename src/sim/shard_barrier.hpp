// Phase executor for the sharded simulation engine.
//
// A sharded Simulation advances in conservative-lookahead epochs: every lane
// runs its own event heap up to the epoch horizon, a barrier, then every lane
// drains the cross-lane mailboxes that other lanes filled during the epoch,
// another barrier. ShardExecutor owns the worker threads (they persist across
// epochs — a barrier costs a fence, not a thread spawn) and runs one such
// phase at a time: run_phase(fn) invokes fn(lane) for every lane, statically
// assigning lane i to worker i % workers, and returns only when all workers
// have finished — that return IS the barrier.
//
// Determinism: lanes never share mutable state inside a phase (the mailboxes
// are per-(src,dst) SPSC rings), so the result of a phase is independent of
// how lanes interleave across workers. The generation/done counters use
// release/acquire RMW chains, which give every worker's phase-N writes a
// happens-before edge into every other worker's phase-N+1 reads — this is
// what makes the spill vectors and engine heaps race-free under TSan.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <thread>
#include <vector>

namespace nfv::sim {

class ShardExecutor {
 public:
  /// `lanes` is the number of lane slots fn() will be called with; `workers`
  /// is clamped to [1, lanes]. With one worker no threads are spawned and
  /// run_phase executes inline — the shards=1 path is the single-threaded
  /// engine with an extra function call, nothing more.
  ShardExecutor(std::size_t lanes, std::size_t workers);
  ~ShardExecutor();

  ShardExecutor(const ShardExecutor&) = delete;
  ShardExecutor& operator=(const ShardExecutor&) = delete;

  /// Run fn(lane) for lane = 0..lanes-1 across the workers, then wait for
  /// all of them: callers may assume every lane finished when this returns.
  void run_phase(const std::function<void(std::size_t)>& fn);

  [[nodiscard]] std::size_t worker_count() const { return workers_; }
  [[nodiscard]] std::size_t lane_count() const { return lanes_; }

 private:
  void worker_loop(std::size_t worker);
  void run_lanes(std::size_t worker);

  std::size_t lanes_;
  std::size_t workers_;
  const std::function<void(std::size_t)>* fn_ = nullptr;
  std::atomic<bool> stop_{false};
  /// Bumped (release) once per phase; workers acquire-spin on it.
  alignas(64) std::atomic<std::uint64_t> generation_{0};
  /// Each worker release-increments after finishing its lanes; the phase is
  /// over when done_ reaches generation_ * workers_.
  alignas(64) std::atomic<std::uint64_t> done_{0};
  std::vector<std::thread> threads_;
};

}  // namespace nfv::sim
