// Deterministic discrete-event engine.
//
// The substrate that stands in for real time on the paper's testbed: every
// component (traffic generators, the NF Manager's Rx/Tx/Wakeup/Monitor
// threads, the CPU scheduler, the disk) advances by scheduling events on
// this engine. Event order is total and deterministic: ties on timestamp
// break on the monotonically increasing sequence number assigned at
// scheduling time, so a simulation with the same seed reproduces exactly.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/time.hpp"

namespace nfv::sim {

/// Identifies a scheduled event so it can be cancelled before it fires
/// (e.g. a quantum-expiry event when the task yields voluntarily first).
using EventId = std::uint64_t;
inline constexpr EventId kInvalidEventId = 0;

class Engine {
 public:
  using Callback = std::function<void()>;

  Engine() = default;
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  [[nodiscard]] Cycles now() const { return now_; }

  /// Schedule `cb` at absolute time `when` (must be >= now()).
  EventId schedule_at(Cycles when, Callback cb);

  /// Schedule `cb` after `delay` cycles (clamped to >= 0).
  EventId schedule_after(Cycles delay, Callback cb) {
    return schedule_at(now_ + (delay < 0 ? 0 : delay), std::move(cb));
  }

  /// Schedule `cb` every `period` cycles starting at now()+period, until the
  /// engine stops. The callback may call cancel() on the returned id.
  EventId schedule_periodic(Cycles period, Callback cb);

  /// Cancel a pending event. Idempotent; cancelling an already-fired or
  /// invalid id is a no-op. Returns true if the event was still pending.
  bool cancel(EventId id);

  /// Run until the event queue drains or simulated time would pass
  /// `deadline`. Events exactly at `deadline` are executed. Returns the
  /// number of events dispatched.
  std::uint64_t run_until(Cycles deadline);

  /// Run until the queue drains.
  std::uint64_t run();

  [[nodiscard]] std::size_t pending_events() const {
    return heap_.size() - cancelled_.size();
  }
  [[nodiscard]] std::uint64_t dispatched_events() const { return dispatched_; }

 private:
  struct Event {
    Cycles when;
    EventId id;
    Callback cb;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.id > b.id;
    }
  };

  Cycles now_ = 0;
  EventId next_id_ = 1;
  std::uint64_t dispatched_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> heap_;
  std::unordered_set<EventId> cancelled_;
  // Maps the stable id handed to callers of schedule_periodic() to the id of
  // the currently-armed occurrence, so cancel() works across re-arms.
  std::unordered_map<EventId, EventId> periodic_current_;
  // Owns each periodic task's re-arming wrapper; the scheduled occurrences
  // hold only weak references, so cancellation (or engine destruction)
  // releases the callback instead of leaking a self-referencing cycle.
  std::unordered_map<EventId, std::shared_ptr<Callback>> periodic_rearm_;
};

}  // namespace nfv::sim
