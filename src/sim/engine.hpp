// Deterministic discrete-event engine.
//
// The substrate that stands in for real time on the paper's testbed: every
// component (traffic generators, the NF Manager's Rx/Tx/Wakeup/Monitor
// threads, the CPU scheduler, the disk) advances by scheduling events on
// this engine. Event order is total and deterministic: ties on timestamp
// break on the monotonically increasing sequence number assigned at
// scheduling time, so a simulation with the same seed reproduces exactly.
//
// Storage is built for the hot path. Callbacks live in pool-allocated slots
// grouped into fixed-size pages whose addresses never move, so a callback
// is constructed in its slot at the schedule call site and invoked in place
// at dispatch — no per-event heap allocation for ordinary lambdas and no
// intermediate moves.
//
// Two ready-queue backends share that slot pool (DESIGN.md §15):
//
//  - kHeap (default): a 4-ary heap of 16-byte keys owned by the engine —
//    (when, seq, slot) packed into one 128-bit integer, so a heap
//    comparison is a single wide compare and a children group is two cache
//    lines. Cancellation is O(1) and lazy: it clears the slot's armed state
//    and the stale heap key is discarded for free when it surfaces.
//  - kWheel: a hierarchical timer wheel — 8 levels of 256 slots at
//    granularities 1, 2^8, ... 2^56 cycles, each wheel cell an intrusive
//    doubly-linked chain threaded through a per-slot side array (no
//    per-event allocation). schedule_at and cancel are O(1) (cancel
//    unlinks immediately, so a million cancelled far-future timers cost no
//    residual memory), ordering is amortized into level cascades, and a
//    near-horizon dispatch buffer sorts same-cycle ties by seq — so the
//    dispatch order, and with it every report and trace, is byte-identical
//    to the heap backend.
//
// Event order is the same under both: total by (when, seq). An EventId
// encodes (slot index, sequence number); sequence numbers are never
// reused, so cancelling an already-fired or never-issued id is a true
// no-op — no bookkeeping grows with it.
#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/time.hpp"
#include "sim/small_callback.hpp"

namespace nfv::sim {

/// Identifies a scheduled event so it can be cancelled before it fires
/// (e.g. a quantum-expiry event when the task yields voluntarily first).
/// Encodes (slot index << 40 | sequence number); sequence numbers start at
/// 1 and are globally unique, so no valid id equals kInvalidEventId and a
/// stale id can never alias a newer event in the same slot.
using EventId = std::uint64_t;
inline constexpr EventId kInvalidEventId = 0;

/// Ready-queue implementation behind an Engine. Dispatch order — and with
/// it every simulation report and trace — is identical under both; the
/// choice is purely a performance trade (the heap wins at the small
/// pending counts of a chain run, the wheel at hundreds of thousands of
/// outstanding timers). Selected per Simulation via
/// PlatformConfig::engine_backend or the NFV_ENGINE_BACKEND env var.
enum class EngineBackend : std::uint8_t {
  kHeap,   ///< 4-ary min-heap of packed keys (default).
  kWheel,  ///< Hierarchical timer wheel: O(1) schedule/cancel at huge N.
};

const char* to_string(EngineBackend backend);

/// "heap" / "wheel" -> backend; anything else (including null) -> false.
bool parse_engine_backend(const char* text, EngineBackend& out);

class Engine {
 public:
  using Callback = SmallCallback;

  explicit Engine(EngineBackend backend = EngineBackend::kHeap) {
    if (backend != EngineBackend::kHeap) set_backend(backend);
  }
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Switch the ready-queue backend. Only legal while no events are
  /// pending (typically right after construction, before the topology
  /// schedules anything).
  void set_backend(EngineBackend backend);
  [[nodiscard]] EngineBackend backend() const { return backend_; }

  /// Pre-size the slot pool and the backend's ready-queue storage for
  /// `pending_hint` concurrently pending events, so benches and
  /// million-timer workloads do not pay warm-up reallocation spikes.
  void reserve(std::size_t pending_hint);

  [[nodiscard]] Cycles now() const { return now_; }

  /// Schedule `cb` at absolute time `when` (must be >= now()). Templated so
  /// the callable is constructed directly into its pooled slot at the call
  /// site — the schedule path compiles down to slot stores plus a heap
  /// push, with no allocation for small callables.
  template <typename F>
  EventId schedule_at(Cycles when, F&& cb) {
    assert(when >= now_ && "cannot schedule into the past");
    if (when < now_) when = now_;
    const std::uint32_t index = alloc_slot();
    Slot& slot = slot_ref(index);
    emplace_callback(slot, std::forward<F>(cb));
    const std::uint64_t seq = next_seq_++;
    slot.state = kArmedBit | seq;
    if (backend_ == EngineBackend::kHeap) {
      heap_push(make_key(when, seq, index));
    } else {
      wheel_insert(make_key(when, seq, index));
    }
    ++pending_;
    return make_id(index, seq);
  }

  /// Schedule `cb` after `delay` cycles (clamped to >= 0).
  template <typename F>
  EventId schedule_after(Cycles delay, F&& cb) {
    return schedule_at(now_ + (delay < 0 ? 0 : delay), std::forward<F>(cb));
  }

  /// Schedule `cb` every `period` cycles starting at now()+period, until the
  /// engine stops. The callback may call cancel() on the returned id; the id
  /// stays valid across re-arms (the task keeps its slot, and the id's birth
  /// sequence number is remembered for the slot's whole periodic tenancy).
  template <typename F>
  EventId schedule_periodic(Cycles period, F&& cb) {
    assert(period > 0 && "periodic events need a positive period");
    const std::uint32_t index = alloc_slot();
    Slot& slot = slot_ref(index);
    emplace_callback(slot, std::forward<F>(cb));
    slot.period = period;
    const std::uint64_t seq = next_seq_++;
    slot.state = kArmedBit | seq;
    if (periodic_birth_.size() < slot_count_) {
      periodic_birth_.resize(slot_count_);
    }
    periodic_birth_[index] = seq;
    if (backend_ == EngineBackend::kHeap) {
      heap_push(make_key(now_ + period, seq, index));
    } else {
      wheel_insert(make_key(now_ + period, seq, index));
    }
    ++pending_;
    return make_id(index, seq);
  }

  /// Cancel a pending event. Idempotent; cancelling an already-fired or
  /// invalid id is a no-op. Returns true if the event was still pending.
  bool cancel(EventId id);

  /// Run until the event queue drains or simulated time would pass
  /// `deadline`. Events exactly at `deadline` are executed. Returns the
  /// number of events dispatched.
  std::uint64_t run_until(Cycles deadline);

  /// Run until the queue drains.
  std::uint64_t run();

  [[nodiscard]] std::size_t pending_events() const { return pending_; }
  [[nodiscard]] std::uint64_t dispatched_events() const { return dispatched_; }

 private:
  static constexpr std::uint32_t kNilIndex = 0xffffffffu;

  /// EventId / heap-key field widths. 24 bits of slot index bounds the
  /// engine at ~16.7M *concurrently pending* events (far above any sweep;
  /// alloc_slot asserts it); 40 bits of sequence number bounds one engine's
  /// lifetime at ~1.1e12 scheduled events (~a day of nonstop dispatch at
  /// micro-bench rates; make_id asserts it).
  static constexpr unsigned kSeqBits = 40;
  static constexpr std::uint64_t kSeqMask = (std::uint64_t{1} << kSeqBits) - 1;
  static constexpr unsigned kSlotBits = 24;
  static constexpr std::uint32_t kSlotMask =
      (std::uint32_t{1} << kSlotBits) - 1;

  /// Slot::state encodings. Armed: kArmedBit | seq of the pending
  /// occurrence. Executing (callback running in place): kIdle, or
  /// kCancelledBit if the running periodic cancelled itself. On the free
  /// list: the index of the next free slot (always < 2^32, so it can never
  /// alias the armed pattern). The lifetimes are disjoint, and sharing the
  /// field keeps sizeof(Slot) at exactly 64.
  static constexpr std::uint64_t kIdle = 0;
  static constexpr std::uint64_t kArmedBit = std::uint64_t{1} << 63;
  static constexpr std::uint64_t kCancelledBit = std::uint64_t{1} << 62;

  /// One pooled event record, packed into a single cache line. `state`
  /// carries the armed sequence number; releasing the slot never needs to
  /// touch a generation counter because sequence numbers are never reused.
  struct alignas(64) Slot {
    Callback cb;
    Cycles period = 0;  ///< >0 marks a periodic task
    std::uint64_t state = kIdle;
  };
  static_assert(sizeof(Slot) == 64, "event slot must stay one cache line");

  /// Slots live in fixed-size pages so their addresses survive pool growth:
  /// a callback executing in place stays valid even when it schedules
  /// enough new events to allocate another page.
  static constexpr unsigned kPageShift = 9;  ///< 512 slots per page
  static constexpr std::size_t kPageSize = std::size_t{1} << kPageShift;

  /// Ready-queue key: (when << 64) | (seq << 24) | slot. The total order is
  /// (when, seq) — the slot bits are tie-break-dead because sequence
  /// numbers are unique — so one 128-bit compare replaces the two-field
  /// compare AND the key carries everything dispatch needs. `when` is never
  /// negative (schedule_at clamps to now()), so the unsigned cast preserves
  /// order.
  using Key = unsigned __int128;
  static Key make_key(Cycles when, std::uint64_t seq, std::uint32_t slot) {
    return (static_cast<Key>(static_cast<std::uint64_t>(when)) << 64) |
           (seq << kSlotBits) | slot;
  }
  static Cycles key_when(Key key) {
    return static_cast<Cycles>(static_cast<std::uint64_t>(key >> 64));
  }

  static constexpr unsigned kArityShift = 2;  ///< 4-ary heap
  static constexpr std::size_t kArity = std::size_t{1} << kArityShift;

  [[nodiscard]] Slot& slot_ref(std::uint32_t index) {
    return pages_[index >> kPageShift][index & (kPageSize - 1)];
  }

  std::uint32_t alloc_slot() {
    if (free_head_ != kNilIndex) {
      const std::uint32_t index = free_head_;
      free_head_ = static_cast<std::uint32_t>(slot_ref(index).state);
      return index;
    }
    if (slot_count_ == pages_.size() * kPageSize) {
      pages_.push_back(std::make_unique<Slot[]>(kPageSize));
    }
    assert(slot_count_ < kSlotMask && "too many concurrently pending events");
    return static_cast<std::uint32_t>(slot_count_++);
  }

  /// Construct the callable in place; a SmallCallback argument is moved in
  /// instead of being wrapped in another SmallCallback.
  template <typename F>
  static void emplace_callback(Slot& slot, F&& cb) {
    if constexpr (std::is_same_v<std::decay_t<F>, Callback>) {
      slot.cb = std::forward<F>(cb);
    } else {
      slot.cb.emplace(std::forward<F>(cb));
    }
  }

  void heap_push(Key key) {
    std::size_t i = heap_.size();
    heap_.push_back(key);
    while (i > 0) {
      const std::size_t parent = (i - 1) >> kArityShift;
      if (key >= heap_[parent]) break;
      heap_[i] = heap_[parent];
      i = parent;
    }
    heap_[i] = key;
  }

  // -- timer-wheel backend (DESIGN.md §15) ----------------------------------
  //
  // 8 levels x 256 cells; level k cells are 2^(8k) cycles wide, so the 8
  // levels together cover the whole non-negative Cycles range with no
  // overflow list. An armed event's full 128-bit key lives by value in
  // exactly one cell bucket, picked so that (when >> 8k) is within 255
  // shifted units of the wheel cursor — which makes every `when` in a
  // level-0 bucket identical (two residents would have to differ by a full
  // 256-unit wrap, and both being >= the cursor and <= cursor+255 forbids
  // that). Value buckets keep the hot paths streaming: inserts are tail
  // appends, cascades are sequential sweeps, and cancellation is lazy —
  // the slot is released immediately (sequence numbers are never reused,
  // so the stale key can't match again) and the key is discarded for free
  // by dispatch's armed check, exactly like a stale heap entry.
  static constexpr unsigned kWheelLevelBits = 8;
  static constexpr std::size_t kWheelSpan = std::size_t{1} << kWheelLevelBits;
  static constexpr unsigned kWheelLevels = 8;
  static constexpr std::size_t kWheelCells = kWheelLevels * kWheelSpan;
  static constexpr std::size_t kWheelWordsPerLevel = kWheelSpan / 64;

  void wheel_insert(Key key);
  void wheel_set_bit(std::size_t cell);
  void wheel_clear_bit(std::size_t cell);
  [[nodiscard]] int wheel_find_from(unsigned level, unsigned from) const;
  Cycles wheel_next_time(Cycles deadline);
  std::uint64_t dispatch_wheel(Cycles deadline);

  void release_slot(std::uint32_t index);
  void heap_pop();
  std::uint64_t dispatch_until(Cycles deadline);
  std::uint64_t dispatch_heap(Cycles deadline);
  void dispatch_periodic(std::uint32_t index);

  static EventId make_id(std::uint32_t slot, std::uint64_t seq) {
    assert(seq <= kSeqMask && "sequence number space exhausted");
    return (static_cast<EventId>(slot) << kSeqBits) | seq;
  }

  Cycles now_ = 0;
  std::uint64_t next_seq_ = 1;
  std::uint64_t dispatched_ = 0;
  std::size_t pending_ = 0;
  EngineBackend backend_ = EngineBackend::kHeap;
  std::vector<Key> heap_;  // 4-ary min-heap over packed (when, seq, slot)
  // -- wheel state (allocated only when the wheel backend is selected) ------
  /// Wheel cursor: every pending event's `when` is >= wheel_time_; it
  /// advances to each cascaded cell's span start and each dispatch time,
  /// and (unlike now_) never runs ahead of the earliest pending event.
  Cycles wheel_time_ = 0;
  std::vector<std::vector<Key>> wheel_cells_;  ///< kWheelCells value buckets
  std::uint64_t wheel_bits_[kWheelLevels * kWheelWordsPerLevel] = {};
  std::uint8_t wheel_level_mask_ = 0;  ///< bit k set: level k has occupants
  /// Per-timestamp dispatch buffer: one batch's (seq << 24 | slot) keys,
  /// sorted ascending so same-cycle ties fire in seq order — the exact
  /// (when, seq) order the heap backend produces.
  std::vector<std::uint64_t> ready_;
  /// Near-horizon window: one level-1 bucket (a full 256-cycle span) taken
  /// wholesale and sorted, consumed front-to-back by dispatch. Saves the
  /// per-event cascade into level-0 buckets — the window IS the sorted
  /// span. Entries at indices < wpos_ are consumed.
  std::vector<Key> window_;
  std::size_t wpos_ = 0;
  std::vector<std::unique_ptr<Slot[]>> pages_;
  std::size_t slot_count_ = 0;
  std::uint32_t free_head_ = kNilIndex;
  /// Birth sequence number of each slot's periodic tenancy, indexed by
  /// slot. A periodic's re-arms take fresh sequence numbers (tie-break
  /// determinism requires it), but its EventId keeps the birth seq — this
  /// side table lets cancel() recognise that id for the slot's whole
  /// tenancy. Only read when slot.period > 0, and any such slot was covered
  /// by the resize in schedule_periodic, so the one-shot hot path never
  /// touches it.
  std::vector<std::uint64_t> periodic_birth_;
};

}  // namespace nfv::sim
