#include "sim/shard_barrier.hpp"

#include <cassert>

namespace nfv::sim {

namespace {

/// Spin briefly, then yield. The yield matters: on hosts with fewer cores
/// than workers (CI runners, laptops) a pure spin barrier makes every epoch
/// cost a scheduling quantum per oversubscribed worker.
inline void backoff(unsigned& spins) {
  if (++spins < 64) {
#if defined(__x86_64__) || defined(__i386__)
    __builtin_ia32_pause();
#endif
  } else {
    spins = 0;
    std::this_thread::yield();
  }
}

}  // namespace

ShardExecutor::ShardExecutor(std::size_t lanes, std::size_t workers)
    : lanes_(lanes),
      workers_(workers < 1 ? 1 : (workers > lanes ? (lanes ? lanes : 1)
                                                  : workers)) {
  threads_.reserve(workers_ - 1);
  for (std::size_t w = 1; w < workers_; ++w) {
    threads_.emplace_back([this, w] { worker_loop(w); });
  }
}

ShardExecutor::~ShardExecutor() {
  stop_.store(true, std::memory_order_release);
  for (auto& t : threads_) t.join();
}

void ShardExecutor::run_lanes(std::size_t worker) {
  for (std::size_t lane = worker; lane < lanes_; lane += workers_) {
    (*fn_)(lane);
  }
}

void ShardExecutor::run_phase(const std::function<void(std::size_t)>& fn) {
  if (workers_ == 1) {
    for (std::size_t lane = 0; lane < lanes_; ++lane) fn(lane);
    return;
  }
  fn_ = &fn;
  // Release-publish fn_ to the workers and start the phase.
  const std::uint64_t gen =
      generation_.fetch_add(1, std::memory_order_release) + 1;
  run_lanes(0);  // the caller participates as worker 0
  done_.fetch_add(1, std::memory_order_release);
  // Wait for everyone. The acquire load synchronizes with each worker's
  // release increment (fetch_add chains extend the release sequence), so all
  // lane writes from this phase are visible once we fall through.
  unsigned spins = 0;
  while (done_.load(std::memory_order_acquire) < gen * workers_) {
    backoff(spins);
  }
  fn_ = nullptr;
}

void ShardExecutor::worker_loop(std::size_t worker) {
  std::uint64_t seen = 0;
  unsigned spins = 0;
  while (true) {
    while (generation_.load(std::memory_order_acquire) == seen) {
      if (stop_.load(std::memory_order_acquire)) return;
      backoff(spins);
    }
    ++seen;
    run_lanes(worker);
    done_.fetch_add(1, std::memory_order_release);
  }
}

}  // namespace nfv::sim
