// One shard of the sharded simulation: an event engine plus its epoch
// bookkeeping.
//
// A lane owns a full Engine instance (slot pool, 4-ary heap, sequence
// counter) and is the unit the ShardExecutor hands to a worker thread. All
// simulation components pinned to a lane — its sched::Core, the NfTasks on
// it, their Manager replica, traffic sources homed there — schedule against
// this engine and never touch another lane's, so lanes are data-race free
// by construction and an epoch's outcome does not depend on which worker
// ran it.
//
// Epoch convention: the conservative-lookahead loop advances lanes in
// epochs [start, horizon). Engine::run_until is *inclusive* of its
// deadline, so run_epoch(horizon) runs the engine to horizon - 1: events
// stamped exactly at the horizon belong to the next epoch, after the
// cross-lane mailboxes for this epoch have been drained. Mailbox drains
// schedule deliveries at send_time + cross_lane_latency, which the epoch
// length guarantees is >= horizon > horizon - 1 = engine.now(), so a drain
// never schedules into a lane's past.
#pragma once

#include <cstdint>

#include "common/time.hpp"
#include "sim/engine.hpp"

namespace nfv::sim {

class EventLane {
 public:
  explicit EventLane(std::uint32_t id,
                     EngineBackend backend = EngineBackend::kHeap)
      : id_(id), engine_(backend) {}

  EventLane(const EventLane&) = delete;
  EventLane& operator=(const EventLane&) = delete;

  [[nodiscard]] std::uint32_t id() const { return id_; }
  [[nodiscard]] Engine& engine() { return engine_; }
  [[nodiscard]] const Engine& engine() const { return engine_; }

  /// Run this lane's engine up to (not including) `horizon`.
  void run_epoch(Cycles horizon) {
    engine_.run_until(horizon - 1);
    ++epochs_;
  }

  /// Number of epochs this lane has executed.
  [[nodiscard]] std::uint64_t epochs() const { return epochs_; }

 private:
  std::uint32_t id_;
  std::uint64_t epochs_ = 0;
  Engine engine_;
};

}  // namespace nfv::sim
