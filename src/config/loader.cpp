#include "config/loader.hpp"

#include <set>
#include <sstream>
#include <vector>

#include "fault/fault_plan.hpp"
#include "fault/lifecycle.hpp"

namespace nfv::config {

namespace {

/// Split a line into whitespace-separated tokens.
std::vector<std::string> tokenize(const std::string& line) {
  std::vector<std::string> tokens;
  std::istringstream iss(line);
  std::string token;
  while (iss >> token) {
    if (token[0] == '#') break;  // trailing comment
    tokens.push_back(token);
  }
  return tokens;
}

/// Parse "key=value" into its parts; returns false if `=` is absent.
bool split_kv(const std::string& token, std::string& key, std::string& value) {
  const auto pos = token.find('=');
  if (pos == std::string::npos) return false;
  key = token.substr(0, pos);
  value = token.substr(pos + 1);
  return true;
}

double parse_double(int line, const std::string& value, const std::string& what) {
  try {
    std::size_t consumed = 0;
    const double parsed = std::stod(value, &consumed);
    if (consumed != value.size()) throw std::invalid_argument(value);
    return parsed;
  } catch (const std::exception&) {
    throw ConfigError(line, "bad number for " + what + ": '" + value + "'");
  }
}

}  // namespace

Topology load(std::istream& in, core::Simulation& sim) {
  Topology topo;
  fault::FaultPlan plan;
  std::string line;
  int line_no = 0;
  int udp_count = 0;
  int tcp_count = 0;
  // One flow class per chain: re-classing silently overwrites shed state,
  // so the loader treats a second `class` line as a config bug.
  std::set<std::string> classed_chains;
  // The engine directive rewires the ready queue, which is only safe while
  // nothing is scheduled — so it must precede every topology directive.
  bool topology_started = false;

  while (std::getline(in, line)) {
    ++line_no;
    const auto tokens = tokenize(line);
    if (tokens.empty()) continue;
    const std::string& verb = tokens[0];
    if (verb != "mode" && verb != "engine") topology_started = true;

    if (verb == "engine") {
      if (topology_started) {
        throw ConfigError(line_no,
                          "engine must come before topology directives");
      }
      if (tokens.size() < 2) {
        throw ConfigError(line_no,
                          "engine takes a backend (heap|wheel) and options");
      }
      sim::EngineBackend backend;
      if (!sim::parse_engine_backend(tokens[1].c_str(), backend)) {
        throw ConfigError(line_no, "unknown engine backend '" + tokens[1] + "'");
      }
      sim.set_engine_backend(backend);
      for (std::size_t i = 2; i < tokens.size(); ++i) {
        std::string key, value;
        if (!split_kv(tokens[i], key, value)) {
          throw ConfigError(line_no, "expected key=value, got '" + tokens[i] + "'");
        }
        if (key == "pending") {
          const double hint = parse_double(line_no, value, "pending");
          if (hint < 0.0) throw ConfigError(line_no, "pending must be >= 0");
          sim.reserve_pending_events(static_cast<std::size_t>(hint));
        } else {
          throw ConfigError(line_no, "unknown engine option '" + key + "'");
        }
      }

    } else if (verb == "mode") {
      if (tokens.size() != 2) throw ConfigError(line_no, "mode takes 1 arg");
      const std::string& mode = tokens[1];
      if (mode == "nfvnice") {
        sim.manager().set_features(true, true, true);
      } else if (mode == "default") {
        sim.manager().set_features(false, false, false);
      } else if (mode == "cgroup") {
        sim.manager().set_features(true, false, false);
      } else if (mode == "backpressure") {
        sim.manager().set_features(false, true, false);
      } else {
        throw ConfigError(line_no, "unknown mode '" + mode + "'");
      }

    } else if (verb == "core") {
      if (tokens.size() < 2) throw ConfigError(line_no, "core takes a policy");
      const std::string& policy = tokens[1];
      std::size_t index = 0;
      if (policy == "normal") {
        index = sim.add_core(core::SchedPolicy::kCfsNormal);
      } else if (policy == "batch") {
        index = sim.add_core(core::SchedPolicy::kCfsBatch);
      } else if (policy == "rr") {
        const double quantum_ms =
            tokens.size() > 2 ? parse_double(line_no, tokens[2], "rr quantum")
                              : 100.0;
        index = sim.add_core(core::SchedPolicy::kRoundRobin, quantum_ms);
      } else {
        throw ConfigError(line_no, "unknown core policy '" + policy + "'");
      }
      topo.cores[std::to_string(index)] = index;

    } else if (verb == "nf") {
      if (tokens.size() < 3) {
        throw ConfigError(line_no, "nf takes a name and key=value options");
      }
      const std::string& name = tokens[1];
      if (topo.nfs.count(name) != 0) {
        throw ConfigError(line_no, "duplicate nf '" + name + "'");
      }
      std::size_t core_index = 0;
      Cycles cost = 250;
      core::NfOptions options;
      bool have_core = false;
      for (std::size_t i = 2; i < tokens.size(); ++i) {
        std::string key, value;
        if (!split_kv(tokens[i], key, value)) {
          throw ConfigError(line_no, "expected key=value, got '" + tokens[i] + "'");
        }
        if (key == "core") {
          const auto it = topo.cores.find(value);
          if (it == topo.cores.end()) {
            throw ConfigError(line_no, "unknown core '" + value + "'");
          }
          core_index = it->second;
          have_core = true;
        } else if (key == "cost") {
          cost = static_cast<Cycles>(parse_double(line_no, value, "cost"));
        } else if (key == "priority") {
          options.priority = parse_double(line_no, value, "priority");
        } else if (key == "batch") {
          options.batch_size = static_cast<std::uint32_t>(
              parse_double(line_no, value, "batch"));
        } else {
          throw ConfigError(line_no, "unknown nf option '" + key + "'");
        }
      }
      if (!have_core) throw ConfigError(line_no, "nf needs core=<index>");
      topo.nfs[name] =
          sim.add_nf(name, core_index, nf::CostModel::fixed(cost), options);

    } else if (verb == "chain") {
      if (tokens.size() < 3) {
        throw ConfigError(line_no, "chain takes a name and >=1 NF");
      }
      const std::string& name = tokens[1];
      if (topo.chains.count(name) != 0) {
        throw ConfigError(line_no, "duplicate chain '" + name + "'");
      }
      std::vector<flow::NfId> hops;
      for (std::size_t i = 2; i < tokens.size(); ++i) {
        const auto it = topo.nfs.find(tokens[i]);
        if (it == topo.nfs.end()) {
          throw ConfigError(line_no, "unknown nf '" + tokens[i] + "'");
        }
        hops.push_back(it->second);
      }
      topo.chains[name] = sim.add_chain(name, std::move(hops));

    } else if (verb == "udp" || verb == "tcp") {
      if (tokens.size() < 2) {
        throw ConfigError(line_no, verb + " takes a chain name");
      }
      const auto it = topo.chains.find(tokens[1]);
      if (it == topo.chains.end()) {
        throw ConfigError(line_no, "unknown chain '" + tokens[1] + "'");
      }
      double rate = 1e6;
      core::UdpOptions udp_opts;
      core::TcpOptions tcp_opts;
      for (std::size_t i = 2; i < tokens.size(); ++i) {
        std::string key, value;
        if (!split_kv(tokens[i], key, value)) {
          throw ConfigError(line_no, "expected key=value, got '" + tokens[i] + "'");
        }
        const double parsed = parse_double(line_no, value, key);
        if (key == "rate") {
          rate = parsed;
        } else if (key == "size") {
          udp_opts.size_bytes = static_cast<std::uint16_t>(parsed);
          tcp_opts.size_bytes = static_cast<std::uint16_t>(parsed);
        } else if (key == "start") {
          udp_opts.start_seconds = parsed;
          tcp_opts.start_seconds = parsed;
        } else if (key == "stop") {
          udp_opts.stop_seconds = parsed;
          tcp_opts.stop_seconds = parsed;
        } else if (key == "rtt_us") {
          tcp_opts.rtt_seconds = parsed * 1e-6;
        } else if (key == "classes") {
          udp_opts.cost_classes = static_cast<std::uint8_t>(parsed);
        } else {
          throw ConfigError(line_no, "unknown flow option '" + key + "'");
        }
      }
      if (verb == "udp") {
        topo.flows["udp" + std::to_string(udp_count++)] =
            sim.add_udp_flow(it->second, rate, udp_opts);
      } else {
        topo.flows["tcp" + std::to_string(tcp_count++)] =
            sim.add_tcp_flow(it->second, tcp_opts).first;
      }

    } else if (verb == "io") {
      if (tokens.size() < 2) {
        throw ConfigError(line_no, "io takes an nf and key=value options");
      }
      const auto it = topo.nfs.find(tokens[1]);
      if (it == topo.nfs.end()) {
        throw ConfigError(line_no, "unknown nf '" + tokens[1] + "'");
      }
      if (topo.ios.count(tokens[1]) != 0) {
        throw ConfigError(line_no, "nf '" + tokens[1] + "' already has io");
      }
      io::AsyncIoEngine::Config io_cfg;
      for (std::size_t i = 2; i < tokens.size(); ++i) {
        std::string key, value;
        if (!split_kv(tokens[i], key, value)) {
          throw ConfigError(line_no, "expected key=value, got '" + tokens[i] + "'");
        }
        if (key == "mode") {
          if (value == "async") {
            io_cfg.mode = io::AsyncIoEngine::Mode::kDoubleBuffered;
          } else if (value == "sync") {
            io_cfg.mode = io::AsyncIoEngine::Mode::kSynchronous;
          } else {
            throw ConfigError(line_no, "unknown io mode '" + value + "'");
          }
        } else if (key == "buffer") {
          io_cfg.buffer_bytes = static_cast<std::uint64_t>(
              parse_double(line_no, value, "buffer"));
        } else if (key == "flush_us") {
          io_cfg.flush_interval = sim.clock().from_micros(
              parse_double(line_no, value, "flush_us"));
        } else {
          throw ConfigError(line_no, "unknown io option '" + key + "'");
        }
      }
      topo.ios[tokens[1]] = &sim.attach_io(it->second, io_cfg);

    } else if (verb == "io_timeout" || verb == "io_retry" ||
               verb == "on_io_fail") {
      if (tokens.size() < 3) {
        throw ConfigError(line_no, verb + " takes an nf and options");
      }
      const auto it = topo.ios.find(tokens[1]);
      if (it == topo.ios.end()) {
        throw ConfigError(line_no, "nf '" + tokens[1] +
                                       "' has no io engine (declare io " +
                                       tokens[1] + " first)");
      }
      io::AsyncIoEngine& io = *it->second;
      if (verb == "io_timeout") {
        double us = -1.0;
        for (std::size_t i = 2; i < tokens.size(); ++i) {
          std::string key, value;
          if (!split_kv(tokens[i], key, value)) {
            throw ConfigError(line_no,
                              "expected key=value, got '" + tokens[i] + "'");
          }
          if (key == "us") {
            us = parse_double(line_no, value, "us");
          } else {
            throw ConfigError(line_no, "unknown io_timeout option '" + key + "'");
          }
        }
        if (us <= 0.0) throw ConfigError(line_no, "io_timeout needs us=<0<..>");
        io.set_timeout(sim.clock().from_micros(us));
      } else if (verb == "io_retry") {
        const io::AsyncIoEngine::Config& cur = io.config();
        double max_attempts = cur.max_attempts;
        double backoff_us = -1.0;
        double multiplier = cur.backoff_multiplier;
        double jitter = cur.jitter_fraction;
        for (std::size_t i = 2; i < tokens.size(); ++i) {
          std::string key, value;
          if (!split_kv(tokens[i], key, value)) {
            throw ConfigError(line_no,
                              "expected key=value, got '" + tokens[i] + "'");
          }
          const double parsed = parse_double(line_no, value, key);
          if (key == "max") {
            max_attempts = parsed;
          } else if (key == "backoff_us") {
            backoff_us = parsed;
          } else if (key == "multiplier") {
            multiplier = parsed;
          } else if (key == "jitter") {
            jitter = parsed;
          } else {
            throw ConfigError(line_no, "unknown io_retry option '" + key + "'");
          }
        }
        if (max_attempts < 1.0) {
          throw ConfigError(line_no, "io_retry needs max>=1");
        }
        if (backoff_us <= 0.0) {
          throw ConfigError(line_no, "io_retry needs backoff_us=<0<..>");
        }
        if (jitter < 0.0 || jitter >= 1.0) {
          throw ConfigError(line_no, "io_retry jitter must be in [0,1)");
        }
        io.set_retry(static_cast<std::uint32_t>(max_attempts),
                     sim.clock().from_micros(backoff_us), multiplier, jitter);
      } else {  // on_io_fail
        const std::string& policy = tokens[2];
        if (policy == "block") {
          io.set_on_fail(io::AsyncIoEngine::OnIoFail::kBlock);
        } else if (policy == "shed") {
          io.set_on_fail(io::AsyncIoEngine::OnIoFail::kShed);
        } else if (policy == "stuck") {
          io.set_on_fail(io::AsyncIoEngine::OnIoFail::kStuck);
        } else {
          throw ConfigError(line_no, "unknown on_io_fail policy '" + policy + "'");
        }
      }

    } else if (verb == "device_fault") {
      if (tokens.size() < 3) {
        throw ConfigError(line_no,
                          "device_fault takes a kind and key=value options");
      }
      const std::string& kind = tokens[1];
      double at_s = -1.0;
      double factor = 0.0;
      double fraction = -1.0;
      double for_s = 0.0;
      bool have_factor = false;
      for (std::size_t i = 2; i < tokens.size(); ++i) {
        std::string key, value;
        if (!split_kv(tokens[i], key, value)) {
          throw ConfigError(line_no, "expected key=value, got '" + tokens[i] + "'");
        }
        const double parsed = parse_double(line_no, value, key);
        if (key == "at") {
          at_s = parsed;
        } else if (key == "factor") {
          factor = parsed;
          have_factor = true;
        } else if (key == "fraction") {
          fraction = parsed;
        } else if (key == "for") {
          for_s = parsed;
        } else {
          throw ConfigError(line_no, "unknown device_fault option '" + key + "'");
        }
      }
      if (at_s < 0.0) {
        throw ConfigError(line_no, "device_fault needs at=<seconds>");
      }
      const Cycles at = sim.clock().from_seconds(at_s);
      const Cycles window = sim.clock().from_seconds(for_s);
      if (kind == "slow" && !have_factor) {
        throw ConfigError(line_no, "device_fault slow needs factor=<x>");
      }
      if (kind == "torn" && fraction < 0.0) {
        throw ConfigError(line_no, "device_fault torn needs fraction=<f>");
      }
      try {
        if (kind == "slow") {
          plan.add_device_slow(at, factor, window);
        } else if (kind == "error") {
          plan.add_device_error(at, window);
        } else if (kind == "torn") {
          plan.add_device_torn(at, fraction, window);
        } else if (kind == "wedge") {
          plan.add_device_wedge(at, window);
        } else {
          throw ConfigError(line_no, "unknown device_fault kind '" + kind + "'");
        }
      } catch (const fault::FaultError& e) {
        throw ConfigError(line_no, e.what());
      }

    } else if (verb == "fault") {
      if (tokens.size() < 3) {
        throw ConfigError(line_no,
                          "fault takes a kind, an nf and key=value options");
      }
      const std::string& kind = tokens[1];
      const auto it = topo.nfs.find(tokens[2]);
      if (it == topo.nfs.end()) {
        throw ConfigError(line_no, "unknown nf '" + tokens[2] + "'");
      }
      double at_s = -1.0;
      double restart_s = -1.0;
      double factor = 0.0;
      double for_s = 0.0;
      bool have_factor = false;
      for (std::size_t i = 3; i < tokens.size(); ++i) {
        std::string key, value;
        if (!split_kv(tokens[i], key, value)) {
          throw ConfigError(line_no, "expected key=value, got '" + tokens[i] + "'");
        }
        const double parsed = parse_double(line_no, value, key);
        if (key == "at") {
          at_s = parsed;
        } else if (key == "restart_after") {
          restart_s = parsed;
        } else if (key == "factor") {
          factor = parsed;
          have_factor = true;
        } else if (key == "for") {
          for_s = parsed;
        } else {
          throw ConfigError(line_no, "unknown fault option '" + key + "'");
        }
      }
      if (at_s < 0.0) throw ConfigError(line_no, "fault needs at=<seconds>");
      const Cycles at = sim.clock().from_seconds(at_s);
      const Cycles restart = restart_s < 0.0
                                 ? fault::kDefaultRestart
                                 : sim.clock().from_seconds(restart_s);
      if (kind == "slow" && !have_factor) {
        throw ConfigError(line_no, "fault slow needs factor=<x>");
      }
      try {
        if (kind == "crash") {
          plan.add_crash(it->second, at, restart);
        } else if (kind == "stall") {
          plan.add_stall(it->second, at, restart);
        } else if (kind == "slow") {
          plan.add_degrade(it->second, at, factor,
                           sim.clock().from_seconds(for_s));
        } else {
          throw ConfigError(line_no, "unknown fault kind '" + kind + "'");
        }
      } catch (const fault::FaultError& e) {
        throw ConfigError(line_no, e.what());
      }

    } else if (verb == "on_dead") {
      if (tokens.size() != 3) {
        throw ConfigError(line_no, "on_dead takes a chain and a policy");
      }
      const auto it = topo.chains.find(tokens[1]);
      if (it == topo.chains.end()) {
        throw ConfigError(line_no, "unknown chain '" + tokens[1] + "'");
      }
      const std::string& policy = tokens[2];
      if (policy == "backpressure") {
        sim.set_dead_policy(it->second, fault::DeadNfPolicy::kBackpressure);
      } else if (policy == "bypass") {
        sim.set_dead_policy(it->second, fault::DeadNfPolicy::kBypass);
      } else if (policy == "buffer") {
        sim.set_dead_policy(it->second, fault::DeadNfPolicy::kBuffer);
      } else {
        throw ConfigError(line_no, "unknown dead-NF policy '" + policy + "'");
      }

    } else if (verb == "slo") {
      // slo <chain> target_us=<v> — give the chain a p99 tail-latency
      // target (DESIGN.md §16). target_us=0 removes it.
      if (tokens.size() != 3) {
        throw ConfigError(line_no, "slo takes a chain and target_us=<v>");
      }
      const auto it = topo.chains.find(tokens[1]);
      if (it == topo.chains.end()) {
        throw ConfigError(line_no, "unknown chain '" + tokens[1] + "'");
      }
      const auto eq = tokens[2].find('=');
      const std::string key =
          eq == std::string::npos ? tokens[2] : tokens[2].substr(0, eq);
      if (key != "target_us" || eq == std::string::npos) {
        throw ConfigError(line_no, "slo needs target_us=<microseconds>");
      }
      double target_us = 0.0;
      try {
        target_us = std::stod(tokens[2].substr(eq + 1));
      } catch (const std::exception&) {
        throw ConfigError(line_no,
                          "bad slo value '" + tokens[2].substr(eq + 1) + "'");
      }
      if (target_us < 0.0) {
        throw ConfigError(line_no, "slo target_us must be >= 0");
      }
      sim.set_chain_slo(it->second, target_us);

    } else if (verb == "class") {
      // class <chain> priority=<p> utility=<u> — give the chain a flow
      // class and arm the ingress admission gate (DESIGN.md §17).
      // Priority ranks the chain for push-aside; utility orders the shed
      // ladder (lowest-utility classes are shed first under overload).
      if (tokens.size() < 2) {
        throw ConfigError(line_no,
                          "class takes a chain and priority=/utility= options");
      }
      const auto it = topo.chains.find(tokens[1]);
      if (it == topo.chains.end()) {
        throw ConfigError(line_no, "unknown chain '" + tokens[1] + "'");
      }
      if (!classed_chains.insert(tokens[1]).second) {
        throw ConfigError(line_no,
                          "duplicate class for chain '" + tokens[1] + "'");
      }
      double priority = 1.0;
      double utility = 1.0;
      for (std::size_t i = 2; i < tokens.size(); ++i) {
        std::string key, value;
        if (!split_kv(tokens[i], key, value)) {
          throw ConfigError(line_no, "expected key=value, got '" + tokens[i] + "'");
        }
        const double parsed = parse_double(line_no, value, key);
        if (key == "priority") {
          priority = parsed;
        } else if (key == "utility") {
          utility = parsed;
        } else {
          throw ConfigError(line_no, "unknown class option '" + key + "'");
        }
      }
      if (!(priority > 0.0) || priority > 1000.0) {
        throw ConfigError(line_no, "class priority must be in (0, 1000]");
      }
      if (!(utility > 0.0) || utility > 1000.0) {
        throw ConfigError(line_no, "class utility must be in (0, 1000]");
      }
      sim.set_chain_class(it->second, priority, utility);

    } else {
      throw ConfigError(line_no, "unknown directive '" + verb + "'");
    }
  }
  if (!plan.empty()) sim.set_fault_plan(std::move(plan));
  return topo;
}

Topology load_string(const std::string& text, core::Simulation& sim) {
  std::istringstream iss(text);
  return load(iss, sim);
}

}  // namespace nfv::config
