// Topology configuration files (§3.1).
//
// "Service chains can be configured during system startup using simple
// configuration files or from an external orchestrator such as an SDN
// controller." This loader is that path: a line-oriented format declaring
// cores, NFs, chains and traffic, applied to a Simulation. The same calls
// an SDN controller would make through the facade are driven from text:
//
//   # comment
//   mode nfvnice              # or: default | cgroup | backpressure
//   core batch                # or: core normal | core rr <quantum_ms>
//   nf nat0 core=0 cost=270 priority=2.0
//   nf dpi0 core=0 cost=550
//   chain web nat0 dpi0
//   udp web rate=6e6 size=64 start=0 stop=1.5
//   tcp web size=1500 rtt_us=200
//   fault crash dpi0 at=0.5 restart_after=0.01   # fault model, DESIGN.md §11
//   fault stall nat0 at=0.2                      # watchdog-killed straggler
//   fault slow dpi0 at=0.1 factor=3 for=0.2      # 3x service time for 200 ms
//   on_dead web bypass                           # or: backpressure | buffer
//   slo web target_us=150                        # tail-latency SLO, §16
//   io nat0 mode=async buffer=262144 flush_us=500  # §3.4 async-I/O engine
//   io_timeout nat0 us=100                       # storage fault domain,
//   io_retry nat0 max=4 backoff_us=10 multiplier=2 jitter=0.1  # DESIGN.md §12
//   on_io_fail nat0 shed                         # or: block | stuck
//   device_fault wedge at=0.2 for=0.1            # or: slow factor=8 |
//                                                #  error | torn fraction=0.5
//
// Identifiers are declared before use; errors carry line numbers. Fault
// times are validated as the plan is built (negative times, non-positive
// restart delays or factors, and overlapping fault windows on one NF or
// the device are rejected with the offending line). The io_timeout /
// io_retry / on_io_fail directives require the NF's `io` line first.
#pragma once

#include <iosfwd>
#include <map>
#include <stdexcept>
#include <string>

#include "core/simulation.hpp"

namespace nfv::config {

/// Thrown on malformed input; what() includes the offending line number.
class ConfigError : public std::runtime_error {
 public:
  ConfigError(int line, const std::string& message)
      : std::runtime_error("config line " + std::to_string(line) + ": " +
                           message),
        line_(line) {}
  [[nodiscard]] int line() const { return line_; }

 private:
  int line_;
};

/// Handles created while applying a config, addressable by name.
struct Topology {
  std::map<std::string, std::size_t> cores;       ///< by index name "0","1"...
  std::map<std::string, flow::NfId> nfs;
  std::map<std::string, flow::ChainId> chains;
  std::map<std::string, flow::FlowId> flows;      ///< "udp0", "tcp1", ...
  /// Async-I/O engines attached via `io <nf> ...`, by NF name (not owned).
  std::map<std::string, io::AsyncIoEngine*> ios;
};

/// Parse `in` and apply it to `sim`. `mode` lines override the
/// PlatformConfig toggles the Simulation was built with. Throws
/// ConfigError on malformed input.
Topology load(std::istream& in, core::Simulation& sim);

/// Convenience: parse a string.
Topology load_string(const std::string& text, core::Simulation& sim);

}  // namespace nfv::config
